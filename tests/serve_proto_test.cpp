// Wire-protocol tests for serve/proto: canonical round-trips, strict
// rejection with exact line-numbered messages (the goldens mirror
// scenario_dsl_test), mutation/truncation fuzz, and framing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/proto.hpp"
#include "util/rng.hpp"

namespace {

using namespace torsim;
using serve::FrameReader;
using serve::QueryKind;
using serve::Request;
using serve::Response;
using serve::Status;

Request stats_request(std::uint64_t id = 7) {
  Request request;
  request.id = id;
  request.client = 2;
  request.kind = QueryKind::kStats;
  return request;
}

Request scan_request() {
  Request request;
  request.id = 41;
  request.client = 3;
  request.kind = QueryKind::kScan;
  request.first = 5;
  request.count = 4;
  request.seed = 9000000001ULL;
  return request;
}

/// A valid request with random per-kind fields; unused fields stay 0
/// so equality round-trips hold exactly.
Request random_request(util::Rng& rng) {
  Request request;
  request.id = rng.next() % 1000000;
  request.client = rng.next() % 64;
  switch (rng.uniform_int(0, 6)) {
    case 0: request.kind = QueryKind::kStats; break;
    case 1:
      request.kind = QueryKind::kHarvest;
      request.first = rng.next() % 100;
      request.count = 1 + rng.next() % 16;
      break;
    case 2:
      request.kind = QueryKind::kResolve;
      request.first = rng.next() % 100;
      request.count = 1 + rng.next() % 16;
      break;
    case 3:
      request.kind = QueryKind::kScan;
      request.first = rng.next() % 100;
      request.count = 1 + rng.next() % 16;
      request.seed = rng.next();
      break;
    case 4:
      request.kind = QueryKind::kPopularity;
      request.requests = 1 + rng.next() % 500;
      request.top = 1 + rng.next() % 10;
      request.seed = rng.next();
      break;
    case 5:
      request.kind = QueryKind::kScenarioStep;
      request.hours = 1 + rng.next() % 48;
      break;
    default: request.kind = QueryKind::kShutdown; break;
  }
  return request;
}

Response random_response(util::Rng& rng) {
  Response response;
  response.id = rng.next() % 1000000;
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      response.status = Status::kOk;
      const std::uint64_t n = rng.next() % 5;
      for (std::uint64_t j = 0; j < n; ++j)
        response.data.push_back("line " + std::to_string(j) + " value " +
                                std::to_string(rng.next() % 1000));
      break;
    }
    case 1:
      response.status = Status::kError;
      response.error = "failure mode " + std::to_string(rng.next() % 100);
      break;
    default:
      response.status = Status::kRetryAfter;
      response.retry_after = 1 + rng.next() % 8;
      break;
  }
  return response;
}

void expect_parse_error(const std::string& text, const std::string& message) {
  try {
    (void)serve::parse_request(text);
    FAIL() << "expected parse failure for:\n" << text;
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), message);
  }
}

void expect_response_parse_error(const std::string& text,
                                 const std::string& message) {
  try {
    (void)serve::parse_response(text);
    FAIL() << "expected parse failure for:\n" << text;
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), message);
  }
}

// --- canonical round-trips ------------------------------------------

TEST(ServeProto, RequestRoundTripsForEveryKind) {
  std::vector<Request> requests;
  requests.push_back(stats_request());
  requests.push_back(scan_request());
  Request harvest;
  harvest.id = 1;
  harvest.kind = QueryKind::kHarvest;
  harvest.first = 0;
  harvest.count = 8;
  requests.push_back(harvest);
  Request resolve = harvest;
  resolve.kind = QueryKind::kResolve;
  requests.push_back(resolve);
  Request popularity;
  popularity.id = 12;
  popularity.kind = QueryKind::kPopularity;
  popularity.requests = 200;
  popularity.top = 5;
  popularity.seed = 33;
  requests.push_back(popularity);
  Request step;
  step.id = 13;
  step.kind = QueryKind::kScenarioStep;
  step.hours = 24;
  requests.push_back(step);
  Request bye;
  bye.id = 14;
  bye.kind = QueryKind::kShutdown;
  requests.push_back(bye);

  for (const Request& request : requests) {
    const std::string text = serve::render_request(request);
    EXPECT_EQ(serve::parse_request(text), request) << text;
    // Canonical: render(parse(render(r))) == render(r).
    EXPECT_EQ(serve::render_request(serve::parse_request(text)), text);
  }
}

TEST(ServeProto, RandomRequestRoundTripProperty) {
  util::Rng rng(0x9e47);
  for (int i = 0; i < 500; ++i) {
    const Request request = random_request(rng);
    EXPECT_EQ(serve::parse_request(serve::render_request(request)), request);
  }
}

TEST(ServeProto, RandomResponseRoundTripProperty) {
  util::Rng rng(0x51ab);
  for (int i = 0; i < 500; ++i) {
    const Response response = random_response(rng);
    const std::string text = serve::render_response(response);
    EXPECT_EQ(serve::parse_response(text), response) << text;
    EXPECT_EQ(serve::render_response(serve::parse_response(text)), text);
  }
}

TEST(ServeProto, CommentsAndBlankLinesAreIgnored) {
  const std::string text =
      "# a comment\n\ntorsim-serve-v1 request\n# another\nid 7\n\n"
      "client 2\nkind stats\n# trailing comment\n";
  EXPECT_EQ(serve::parse_request(text), stats_request());
}

TEST(ServeProto, ScriptParsesMultipleRequests) {
  const std::string text = serve::render_request(stats_request()) + "\n" +
                           serve::render_request(scan_request()) +
                           "# done\n";
  const std::vector<Request> script = serve::parse_script(text);
  ASSERT_EQ(script.size(), 2u);
  EXPECT_EQ(script[0], stats_request());
  EXPECT_EQ(script[1], scan_request());
}

TEST(ServeProto, ScriptErrorsUseWholeScriptLineNumbers) {
  // First request spans lines 1-4; the second request's bad kind sits
  // on line 8 of the script.
  const std::string text = serve::render_request(stats_request()) +
                           "torsim-serve-v1 request\nid 8\nclient 0\n"
                           "kind frobnicate\n";
  try {
    (void)serve::parse_script(text);
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()),
              "serve parse error at line 8: unknown query kind 'frobnicate'");
  }
}

// --- exact rejection goldens ----------------------------------------

TEST(ServeProtoRejects, EmptyDocument) {
  expect_parse_error(
      "", "serve parse error at line 1: unexpected end of input: expected "
          "the request header");
}

TEST(ServeProtoRejects, WrongHeader) {
  expect_parse_error("garbage\n",
                     "serve parse error at line 1: expected "
                     "'torsim-serve-v1 request' header, got 'garbage'");
}

TEST(ServeProtoRejects, TruncatedAfterHeader) {
  expect_parse_error("torsim-serve-v1 request\n",
                     "serve parse error at line 2: unexpected end of input: "
                     "expected 'id'");
}

TEST(ServeProtoRejects, FieldWithoutValue) {
  expect_parse_error("torsim-serve-v1 request\nid\n",
                     "serve parse error at line 2: 'id' needs a value");
}

TEST(ServeProtoRejects, NegativeInteger) {
  expect_parse_error(
      "torsim-serve-v1 request\nid -3\n",
      "serve parse error at line 2: 'id' must be a non-negative integer, "
      "got '-3'");
}

TEST(ServeProtoRejects, NonNumericInteger) {
  expect_parse_error(
      "torsim-serve-v1 request\nid 1\nclient 0\nkind scan\nfirst 0\n"
      "count 2\nseed banana\n",
      "serve parse error at line 7: 'seed' must be a non-negative integer, "
      "got 'banana'");
}

TEST(ServeProtoRejects, OutOfOrderFields) {
  expect_parse_error("torsim-serve-v1 request\nclient 1\n",
                     "serve parse error at line 2: expected 'id', got "
                     "'client'");
}

TEST(ServeProtoRejects, UnknownKind) {
  expect_parse_error(
      "torsim-serve-v1 request\nid 1\nclient 0\nkind frobnicate\n",
      "serve parse error at line 4: unknown query kind 'frobnicate'");
}

TEST(ServeProtoRejects, TrailingContent) {
  expect_parse_error(
      serve::render_request(stats_request()) + "extra stuff\n",
      "serve parse error at line 5: unexpected trailing content "
      "'extra stuff'");
}

TEST(ServeProtoRejects, ResponseUnknownStatus) {
  expect_response_parse_error(
      "torsim-serve-v1 response\nid 1\nstatus bogus\n",
      "serve parse error at line 3: unknown status 'bogus'");
}

TEST(ServeProtoRejects, ResponseMissingDataLine) {
  expect_response_parse_error(
      "torsim-serve-v1 response\nid 1\nstatus ok\ndata 2\n  only one\n",
      "serve parse error at line 6: unexpected end of input: expected data "
      "line 2 of 2");
}

TEST(ServeProtoRejects, ResponseDataLineWithoutIndent) {
  expect_response_parse_error(
      "torsim-serve-v1 response\nid 1\nstatus ok\ndata 1\nno indent\n",
      "serve parse error at line 5: data line must start with two spaces");
}

TEST(ServeProtoRejects, ResponseOverIndentedDataLine) {
  expect_response_parse_error(
      "torsim-serve-v1 response\nid 1\nstatus ok\ndata 1\n   deep\n",
      "serve parse error at line 5: data line must carry non-indented "
      "content");
}

// --- mutation / truncation fuzz -------------------------------------

TEST(ServeProtoFuzz, ThreeHundredSingleByteGarbles) {
  const std::string base = serve::render_request(scan_request());
  util::Rng rng(0xfa2b);
  int rejected = 0;
  int reparsed = 0;
  for (int m = 0; m < 300; ++m) {
    std::string doc = base;
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    doc[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const Request request = serve::parse_request(doc);
      // A mutation that still parses must itself round-trip — the
      // parser never accepts a document it cannot re-render.
      EXPECT_EQ(serve::parse_request(serve::render_request(request)),
                request);
      ++reparsed;
    } catch (const std::invalid_argument& error) {
      EXPECT_EQ(std::string(error.what())
                    .rfind("serve parse error at line ", 0),
                0u)
          << error.what();
      ++rejected;
    }
  }
  // The mix has to exercise both outcomes for the fuzz to mean much:
  // most single-byte garbles reject, while a digit-for-digit swap (or
  // an identity swap) still parses and must stay canonical.
  EXPECT_GT(rejected, 200);
  EXPECT_GE(reparsed, 1);
}

TEST(ServeProtoFuzz, ThreeHundredResponseGarbles) {
  Response response;
  response.id = 9;
  response.status = Status::kOk;
  response.data = {"hour 2 relays_online 60 hsdirs 44",
                   "service 1 open 2 ports 80,443"};
  const std::string base = serve::render_response(response);
  util::Rng rng(0x77e1);
  for (int m = 0; m < 300; ++m) {
    std::string doc = base;
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    doc[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const Response parsed = serve::parse_response(doc);
      EXPECT_EQ(serve::parse_response(serve::render_response(parsed)),
                parsed);
    } catch (const std::invalid_argument& error) {
      EXPECT_EQ(std::string(error.what())
                    .rfind("serve parse error at line ", 0),
                0u)
          << error.what();
    }
  }
}

TEST(ServeProtoFuzz, EveryTruncationIsHandled) {
  const std::string base = serve::render_request(scan_request());
  int rejected = 0;
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    const std::string doc = base.substr(0, cut);
    try {
      (void)serve::parse_request(doc);
    } catch (const std::invalid_argument& error) {
      EXPECT_EQ(std::string(error.what())
                    .rfind("serve parse error at line ", 0),
                0u)
          << error.what();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// --- framing ---------------------------------------------------------

TEST(ServeFraming, EncodeDecodeRoundTrip) {
  FrameReader reader;
  const std::string body = serve::render_request(scan_request());
  EXPECT_EQ(reader.feed(serve::encode_frame(body)), 1u);
  std::string out;
  ASSERT_TRUE(reader.next_frame(out));
  EXPECT_EQ(out, body);
  EXPECT_FALSE(reader.next_frame(out));
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ServeFraming, ByteAtATimeFeedReassembles) {
  const std::string frame = serve::encode_frame("hello serve");
  FrameReader reader;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i)
    reader.feed(std::string_view(frame).substr(i, 1));
  EXPECT_EQ(reader.feed(std::string_view(frame).substr(frame.size() - 1)),
            1u);
  std::string out;
  ASSERT_TRUE(reader.next_frame(out));
  EXPECT_EQ(out, "hello serve");
}

TEST(ServeFraming, MultipleFramesInOneFeed) {
  const std::string bytes = serve::encode_frame("one") +
                            serve::encode_frame("") +
                            serve::encode_frame("three");
  FrameReader reader;
  EXPECT_EQ(reader.feed(bytes), 3u);
  std::string out;
  ASSERT_TRUE(reader.next_frame(out));
  EXPECT_EQ(out, "one");
  ASSERT_TRUE(reader.next_frame(out));
  EXPECT_EQ(out, "");
  ASSERT_TRUE(reader.next_frame(out));
  EXPECT_EQ(out, "three");
}

TEST(ServeFraming, PartialFrameReportsPendingBytes) {
  FrameReader reader;
  const std::string frame = serve::encode_frame("abcdef");
  reader.feed(std::string_view(frame).substr(0, 7));
  EXPECT_EQ(reader.pending_bytes(), 7u);
  std::string out;
  EXPECT_FALSE(reader.next_frame(out));
}

TEST(ServeFraming, OversizedDeclaredLengthPoisonsTheReader) {
  FrameReader reader;
  // Declared length 0x7fffffff, far beyond kMaxFrameBytes.
  const std::string header = {"\x7f\xff\xff\xff", 4};
  EXPECT_THROW(reader.feed(header), std::invalid_argument);
  // Poisoned: every later feed throws too, even with innocent bytes.
  EXPECT_THROW(reader.feed("x"), std::invalid_argument);
}

TEST(ServeFraming, EncodeRejectsOversizedBody) {
  const std::string big(serve::kMaxFrameBytes + 1, 'a');
  EXPECT_THROW((void)serve::encode_frame(big), std::invalid_argument);
}

}  // namespace
