#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace torsim::util {
namespace {

// ---------------------------------------------------------------------
// resolve_threads
// ---------------------------------------------------------------------

TEST(ResolveThreadsTest, PositivePassesThrough) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(4), 4);
  EXPECT_EQ(resolve_threads(128), 128);
}

TEST(ResolveThreadsTest, NonPositiveMeansHardware) {
  const int hw = resolve_threads(0);
  EXPECT_GE(hw, 1);
  EXPECT_EQ(resolve_threads(-1), hw);
  EXPECT_EQ(resolve_threads(-100), hw);
}

// ---------------------------------------------------------------------
// parallel_for / parallel_map basics
// ---------------------------------------------------------------------

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  // n >= kMinParallelGrain so the shared pool actually dispatches.
  const std::size_t n = 4 * kMinParallelGrain;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ParallelForTest, ZeroTasksIsNoOp) {
  bool ran = false;
  parallel_for(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SmallBatchRunsBelowGrainThreshold) {
  // n < kMinParallelGrain takes the inline path, but results must be
  // complete and ordered just the same.
  const std::size_t n = kMinParallelGrain - 1;
  std::vector<int> hits(n, 0);
  parallel_for(n, 4, [&](std::size_t i) { ++hits[i]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelMapTest, OrderedReduction) {
  const std::size_t n = 500;
  const auto out =
      parallel_map(n, 4, [](std::size_t i) { return i * i + 7; });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i + 7);
}

TEST(ParallelMapTest, ThreadsOneMatchesThreadsFour) {
  const std::size_t n = 300;
  const auto fn = [](std::size_t i) {
    // A per-index child stream: the pattern every call site uses.
    Rng rng = Rng(1234).child(i);
    return rng.next() ^ (i << 32);
  };
  EXPECT_EQ(parallel_map(n, 1, fn), parallel_map(n, 4, fn));
}

TEST(ParallelMapTest, MatchesSerialTransform) {
  const std::size_t n = 400;
  std::vector<std::size_t> indexes(n);
  std::iota(indexes.begin(), indexes.end(), std::size_t{0});
  const auto fn = [](std::size_t i) {
    return std::to_string(i * 31 % 97) + ":" + std::to_string(i);
  };
  std::vector<std::string> serial(n);
  std::transform(indexes.begin(), indexes.end(), serial.begin(), fn);
  EXPECT_EQ(parallel_map(n, 4, fn), serial);
}

TEST(ParallelMapTest, PropertyRandomWorkloadsMatchSerial) {
  // Randomized workload shapes: size, thread count, and per-index work
  // drawn from a seeded Rng; every shape must equal the serial
  // std::transform over indexes.
  Rng meta(20130214);
  for (int round = 0; round < 25; ++round) {
    const auto n = static_cast<std::size_t>(meta.uniform_int(0, 700));
    const int threads = static_cast<int>(meta.uniform_int(1, 8));
    const std::uint64_t salt = meta.next();
    const auto fn = [salt](std::size_t i) {
      Rng rng = Rng(salt).child(i);
      // Variable per-index work so chunks finish out of order.
      const int spins = static_cast<int>(rng.uniform_int(1, 50));
      std::uint64_t acc = salt;
      for (int s = 0; s < spins; ++s) acc ^= rng.next();
      return acc;
    };
    std::vector<std::uint64_t> serial(n);
    for (std::size_t i = 0; i < n; ++i) serial[i] = fn(i);
    EXPECT_EQ(parallel_map(n, threads, fn), serial)
        << "round=" << round << " n=" << n << " threads=" << threads;
  }
}

TEST(RngChildTest, DistinctIndicesYieldDistinctStreams) {
  // The whole per-task determinism scheme rests on child(i) != child(j)
  // for i != j: if two indices ever collided, two parallel tasks would
  // silently share a stream and their draws would correlate. Compare
  // stream prefixes pairwise over a spread of labels (dense low indices
  // plus far-apart large ones).
  Rng base(20140623);
  std::vector<std::uint64_t> labels;
  for (std::uint64_t i = 0; i < 64; ++i) labels.push_back(i);
  for (std::uint64_t i = 0; i < 8; ++i)
    labels.push_back((i + 1) * 0x9e3779b97f4a7c15ULL);

  constexpr int kPrefix = 8;
  std::vector<std::vector<std::uint64_t>> prefixes;
  prefixes.reserve(labels.size());
  for (std::uint64_t label : labels) {
    Rng child = base.child(label);
    std::vector<std::uint64_t> p(kPrefix);
    for (auto& v : p) v = child.next();
    prefixes.push_back(std::move(p));
  }
  for (std::size_t a = 0; a < prefixes.size(); ++a) {
    for (std::size_t b = a + 1; b < prefixes.size(); ++b) {
      EXPECT_NE(prefixes[a], prefixes[b])
          << "labels " << labels[a] << " and " << labels[b]
          << " derived identical streams";
    }
  }
}

TEST(RngChildTest, DerivationIsPureAndOrderIndependent) {
  // child() must not perturb the parent and must not depend on how many
  // siblings were derived before it.
  Rng a(777);
  Rng b(777);
  const std::uint64_t direct = a.child(5).next();
  for (std::uint64_t i = 0; i < 5; ++i) (void)b.child(i);
  EXPECT_EQ(b.child(5).next(), direct);
  EXPECT_EQ(a.next(), b.next()) << "child() advanced the parent state";
}

TEST(ParallelForTest, ThreadsBeyondPoolSizeClamped) {
  // More threads than the pool owns must still complete every index.
  const std::size_t n = 4 * kMinParallelGrain;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 1000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

// ---------------------------------------------------------------------
// Exception propagation
// ---------------------------------------------------------------------

TEST(ParallelForTest, LowestThrowingIndexWinsParallel) {
  const std::size_t n = 10 * kMinParallelGrain;
  try {
    parallel_for(n, 4, [](std::size_t i) {
      if (i % 100 == 17) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Serial would throw at i == 17 first; parallel must agree.
    EXPECT_STREQ(e.what(), "17");
  }
}

TEST(ParallelForTest, LowestThrowingIndexWinsSerial) {
  try {
    parallel_for(64, 1, [](std::size_t i) {
      if (i >= 17) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "17");
  }
}

TEST(ParallelForTest, ExceptionTypePreserved) {
  EXPECT_THROW(
      parallel_for(4 * kMinParallelGrain, 4,
                   [](std::size_t i) {
                     if (i == 3) throw std::out_of_range("boom");
                   }),
      std::out_of_range);
}

TEST(ParallelForTest, PoolUsableAfterException) {
  const std::size_t n = 4 * kMinParallelGrain;
  EXPECT_THROW(parallel_for(n, 4,
                            [](std::size_t) {
                              throw std::runtime_error("x");
                            }),
               std::runtime_error);
  // The failed job must not poison the shared pool.
  const auto out = parallel_map(n, 4, [](std::size_t i) { return i; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i);
}

// ---------------------------------------------------------------------
// Nested-use rejection
// ---------------------------------------------------------------------

TEST(ParallelForTest, NestedParallelInsideParallelThrows) {
  std::atomic<int> nested_throws{0};
  parallel_for(kMinParallelGrain, 4, [&](std::size_t) {
    try {
      parallel_for(kMinParallelGrain, 4, [](std::size_t) {});
    } catch (const std::logic_error&) {
      nested_throws.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(nested_throws.load(), kMinParallelGrain);
}

TEST(ParallelForTest, NestedParallelInsideSerialRegionThrowsToo) {
  // The rejection must not depend on the outer loop's thread count,
  // or a threads=1 configuration would hide the nesting bug.
  int nested_throws = 0;
  parallel_for(8, 1, [&](std::size_t) {
    try {
      parallel_for(kMinParallelGrain, 4, [](std::size_t) {});
    } catch (const std::logic_error&) {
      ++nested_throws;
    }
  });
  EXPECT_EQ(nested_throws, 8);
}

TEST(ParallelForTest, NestedSerialInsideParallelIsAllowed) {
  // threads = 1 inner call sites are the documented way to nest.
  std::vector<std::atomic<int>> hits(kMinParallelGrain);
  parallel_for(kMinParallelGrain, 4, [&](std::size_t i) {
    parallel_for(4, 1, [&](std::size_t) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < kMinParallelGrain; ++i)
    EXPECT_EQ(hits[i].load(), 4);
}

TEST(ParallelForTest, RegionFlagRestoredAfterNestedSerialLoop) {
  // A serial sub-loop inside a parallel region must not clear the outer
  // region flag when it returns.
  std::atomic<int> still_inside{0};
  parallel_for(kMinParallelGrain, 4, [&](std::size_t) {
    parallel_for(2, 1, [](std::size_t) {});
    if (in_parallel_region())
      still_inside.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(still_inside.load(), kMinParallelGrain);
}

TEST(ParallelForTest, RegionFlagClearedOutside) {
  EXPECT_FALSE(in_parallel_region());
  parallel_for(kMinParallelGrain, 4, [](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
  });
  EXPECT_FALSE(in_parallel_region());
}

// ---------------------------------------------------------------------
// ThreadPool direct
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, SizeCountsCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  ThreadPool inline_pool(1);
  EXPECT_EQ(inline_pool.size(), 1);
}

TEST(ThreadPoolTest, SharedPoolAtLeastFour) {
  // Sized for explicit threads=4 runs even in single-core containers.
  EXPECT_GE(ThreadPool::shared().size(), 4);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  const std::thread::id caller = std::this_thread::get_id();
  pool.run(hits.size(), 0, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++hits[i];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, ConcurrentExternalCallersSerialize) {
  // Top-level run() from several external threads must queue, not corrupt
  // each other's job state.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 512;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kN, 0));
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c)
    callers.emplace_back([&, c] {
      pool.run(kN, 0, [&, c](std::size_t i) { ++hits[c][i]; });
    });
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[c][i], 1) << "caller=" << c << " i=" << i;
}

}  // namespace
}  // namespace torsim::util
