#include <gtest/gtest.h>

#include <cmath>

#include "dirauth/authority.hpp"
#include "hs/client.hpp"
#include "hs/guard_manager.hpp"
#include "hs/service_host.hpp"
#include "hsdir/directory_network.hpp"
#include "relay/registry.hpp"

namespace torsim {
namespace {

constexpr util::UnixTime kT0 = 1359676800;  // 2013-02-01

// Builds a small all-HSDir consensus world fragment.
struct MiniNet {
  relay::Registry registry;
  dirauth::Authority authority;
  dirauth::Consensus consensus;
  hsdir::DirectoryNetwork dirnet;
  util::Rng rng{20130204};

  explicit MiniNet(int relays = 30, util::Seconds pre_uptime = 0) {
    const util::Seconds uptime =
        pre_uptime != 0 ? pre_uptime : 30 * util::kSecondsPerHour;
    for (int i = 0; i < relays; ++i) {
      relay::RelayConfig rc;
      rc.nickname = "n" + std::to_string(i);
      rc.address = util::Ipv4::random_public(rng);
      rc.bandwidth_kbps = 100.0;
      const auto id = registry.create(rc, rng, kT0 - uptime);
      registry.get(id).set_online(true, kT0 - uptime);
    }
    consensus = authority.build_consensus(registry, kT0);
  }
};

// ---------------------------------------------------------------------
// Descriptor
// ---------------------------------------------------------------------

TEST(DescriptorTest, MakeDescriptorFieldsConsistent) {
  util::Rng rng(21);
  const auto key = crypto::KeyPair::generate(rng);
  const auto d = hsdir::make_descriptor(key, {}, 1, kT0);
  EXPECT_EQ(d.replica, 1);
  EXPECT_EQ(d.published, kT0);
  EXPECT_EQ(d.permanent_id,
            crypto::permanent_id_from_fingerprint(key.fingerprint()));
  EXPECT_EQ(d.time_period, crypto::time_period(kT0, d.permanent_id));
  EXPECT_EQ(d.descriptor_id,
            crypto::descriptor_id(d.permanent_id, d.time_period, 1));
}

TEST(DescriptorTest, OnionAddressRecoverableFromDescriptor) {
  // The core of the harvesting attack: the descriptor embeds the public
  // key, from which the onion address is derivable.
  util::Rng rng(22);
  const auto key = crypto::KeyPair::generate(rng);
  const auto d = hsdir::make_descriptor(key, {}, 0, kT0);
  EXPECT_EQ(d.onion_address(),
            crypto::onion_address(
                crypto::permanent_id_from_fingerprint(key.fingerprint())));
}

// ---------------------------------------------------------------------
// DescriptorStore
// ---------------------------------------------------------------------

TEST(DescriptorStoreTest, StoreAndFetch) {
  util::Rng rng(23);
  hsdir::DescriptorStore store;
  const auto key = crypto::KeyPair::generate(rng);
  const auto d = hsdir::make_descriptor(key, {}, 0, kT0);
  store.store(d);
  EXPECT_EQ(store.size(), 1u);
  const auto fetched = store.fetch(d.descriptor_id, kT0 + 60);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->descriptor_id, d.descriptor_id);
  crypto::DescriptorId missing{};
  EXPECT_FALSE(store.fetch(missing, kT0).has_value());
}

TEST(DescriptorStoreTest, ExpiryAfter24Hours) {
  util::Rng rng(24);
  hsdir::DescriptorStore store;
  const auto key = crypto::KeyPair::generate(rng);
  const auto d = hsdir::make_descriptor(key, {}, 0, kT0);
  store.store(d);
  EXPECT_TRUE(store.fetch(d.descriptor_id, kT0 + 24 * 3600).has_value());
  EXPECT_FALSE(store.fetch(d.descriptor_id, kT0 + 24 * 3600 + 1).has_value());
  store.expire(kT0 + 25 * 3600);
  EXPECT_EQ(store.size(), 0u);
}

TEST(DescriptorStoreTest, FetchLogRecordsHitsAndMisses) {
  util::Rng rng(25);
  hsdir::DescriptorStore store;
  store.enable_logging(true);
  const auto key = crypto::KeyPair::generate(rng);
  const auto d = hsdir::make_descriptor(key, {}, 0, kT0);
  store.store(d);
  (void)store.fetch(d.descriptor_id, kT0 + 1);
  crypto::DescriptorId missing{};
  (void)store.fetch(missing, kT0 + 2);
  ASSERT_EQ(store.fetch_log().size(), 2u);
  EXPECT_TRUE(store.fetch_log()[0].found);
  EXPECT_FALSE(store.fetch_log()[1].found);
  EXPECT_EQ(store.fetch_log()[1].time, kT0 + 2);
  store.clear_fetch_log();
  EXPECT_TRUE(store.fetch_log().empty());
}

TEST(DescriptorStoreTest, NoLoggingByDefault) {
  util::Rng rng(26);
  hsdir::DescriptorStore store;
  crypto::DescriptorId id{};
  (void)store.fetch(id, kT0);
  EXPECT_TRUE(store.fetch_log().empty());
}

// ---------------------------------------------------------------------
// DirectoryNetwork + ServiceHost
// ---------------------------------------------------------------------

TEST(DirectoryNetworkTest, PublishPlacesAtResponsibleHsdirs) {
  MiniNet net;
  util::Rng rng(27);
  auto host = hs::ServiceHost::create(rng, kT0);
  const auto receivers =
      host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  // 2 replicas x 3 HSDirs, possibly overlapping.
  EXPECT_GE(receivers.size(), 3u);
  EXPECT_LE(receivers.size(), 6u);
  // Every receiver is indeed responsible for one of the descriptor ids.
  const auto ids = host.current_descriptor_ids(kT0);
  for (const auto relay_id : receivers) {
    bool responsible = false;
    for (const auto& id : ids)
      for (const auto* e : net.consensus.responsible_hsdirs(id))
        responsible |= e->relay == relay_id;
    EXPECT_TRUE(responsible);
  }
}

TEST(DirectoryNetworkTest, FetchCountsRequestsAndProbesSeparately) {
  // fetch_attempts counts requests (one per fetch_from call);
  // fetch_probes counts the per-directory contacts a request fans out
  // into. A published id hits the first responsible dir (1 probe); a
  // missing id walks the whole responsible set (kHsDirsPerReplica
  // probes) before giving up.
  MiniNet net;
  obs::MetricsRegistry metrics;
  hsdir::DirectoryNetworkConfig config;
  config.metrics = &metrics;
  hsdir::DirectoryNetwork dirnet(config);

  util::Rng rng(32);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, dirnet, rng, kT0);

  const auto id = host.current_descriptor_ids(kT0).front();
  relay::RelayId hsdir;
  ASSERT_TRUE(dirnet.fetch_from(net.consensus, id, kT0 + 10, hsdir));
  EXPECT_EQ(metrics.counter("hsdir.fetch_attempts").value(), 1);
  EXPECT_EQ(metrics.counter("hsdir.fetch_probes").value(), 1);

  crypto::DescriptorId missing{};
  EXPECT_FALSE(dirnet.fetch_from(net.consensus, missing, kT0 + 10, hsdir));
  EXPECT_EQ(metrics.counter("hsdir.fetch_attempts").value(), 2);
  EXPECT_EQ(metrics.counter("hsdir.fetch_probes").value(),
            1 + crypto::kHsDirsPerReplica);
}

TEST(DirectoryNetworkTest, FetchFindsPublishedDescriptor) {
  MiniNet net;
  util::Rng rng(28);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  for (const auto& id : host.current_descriptor_ids(kT0)) {
    relay::RelayId hsdir;
    const auto d = net.dirnet.fetch_from(net.consensus, id, kT0 + 10, hsdir);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->onion_address(), host.onion_address());
    EXPECT_NE(hsdir, relay::kInvalidRelayId);
  }
}

TEST(ServiceHostTest, NoRepublishWithinPeriodWhenRingStable) {
  MiniNet net;
  util::Rng rng(29);
  auto host = hs::ServiceHost::create(rng, kT0);
  EXPECT_FALSE(host.maybe_publish(net.consensus, net.dirnet, rng, kT0).empty());
  EXPECT_TRUE(host.maybe_publish(net.consensus, net.dirnet, rng, kT0 + 60)
                  .empty());  // same period, same ring
  EXPECT_FALSE(
      host.maybe_publish(net.consensus, net.dirnet, rng, kT0 + 60, true)
          .empty());  // forced
}

TEST(ServiceHostTest, RepublishesWhenPeriodRolls) {
  MiniNet net;
  util::Rng rng(30);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  const auto rotation =
      crypto::seconds_until_rotation(kT0, host.permanent_id());
  EXPECT_FALSE(host.maybe_publish(net.consensus, net.dirnet, rng,
                                  kT0 + rotation)
                   .empty());
  EXPECT_EQ(host.last_published_period(),
            crypto::time_period(kT0 + rotation, host.permanent_id()));
}

TEST(ServiceHostTest, RepublishesWhenResponsibleSetChanges) {
  MiniNet net;
  util::Rng rng(31);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);

  // A new relay lands exactly after the descriptor id: responsible set
  // changes mid-period -> service must re-upload.
  const auto ids = host.current_descriptor_ids(kT0);
  crypto::KeyPair positioned = crypto::KeyPair::generate(rng);
  for (int tries = 0; tries < 200000; ++tries) {
    const double d = crypto::ring_distance(ids[0], positioned.fingerprint());
    if (d < std::ldexp(1.0, 160) / 1e6) break;
    positioned = crypto::KeyPair::generate(rng);
  }
  relay::RelayConfig rc;
  rc.nickname = "interloper";
  rc.address = util::Ipv4(6, 6, 6, 6);
  const auto id = net.registry.create_with_key(
      rc, std::move(positioned), kT0 - 30 * util::kSecondsPerHour);
  net.registry.get(id).set_online(true, kT0 - 30 * util::kSecondsPerHour);
  net.consensus = net.authority.build_consensus(net.registry, kT0 + 3600);

  const auto receivers =
      host.maybe_publish(net.consensus, net.dirnet, rng, kT0 + 3600);
  EXPECT_FALSE(receivers.empty());
}

TEST(ServiceHostTest, OfflineServiceDoesNotPublish) {
  MiniNet net;
  util::Rng rng(32);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.set_online(false);
  EXPECT_TRUE(host.maybe_publish(net.consensus, net.dirnet, rng, kT0).empty());
}

// ---------------------------------------------------------------------
// GuardManager
// ---------------------------------------------------------------------

TEST(GuardManagerTest, PicksThreeGuardsFromConsensus) {
  MiniNet net(40, 10 * util::kSecondsPerDay);  // uptime enough for Guard
  util::Rng rng(33);
  hs::GuardManager manager;
  manager.maintain(net.consensus, rng, kT0);
  EXPECT_EQ(manager.guards().size(), 3u);
  for (const auto& g : manager.guards()) {
    const auto* e = net.consensus.find(g.fingerprint);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(has_flag(e->flags, dirauth::Flag::kGuard));
    EXPECT_GE(g.expires_at - g.chosen_at, 30 * util::kSecondsPerDay);
    EXPECT_LE(g.expires_at - g.chosen_at, 60 * util::kSecondsPerDay);
  }
}

TEST(GuardManagerTest, GuardsAreDistinct) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(34);
  hs::GuardManager manager;
  manager.maintain(net.consensus, rng, kT0);
  const auto& guards = manager.guards();
  for (std::size_t i = 0; i < guards.size(); ++i)
    for (std::size_t j = i + 1; j < guards.size(); ++j)
      EXPECT_NE(guards[i].relay, guards[j].relay);
}

TEST(GuardManagerTest, ExpiredGuardsReplaced) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(35);
  hs::GuardManager manager;
  manager.maintain(net.consensus, rng, kT0);
  const auto old_guards = manager.guards();
  manager.maintain(net.consensus, rng, kT0 + 61 * util::kSecondsPerDay);
  EXPECT_EQ(manager.guards().size(), 3u);
  for (const auto& g : manager.guards())
    EXPECT_GT(g.chosen_at, old_guards[0].chosen_at);
}

TEST(GuardManagerTest, NoGuardFlaggedRelaysNoGuards) {
  MiniNet net(10, 2 * util::kSecondsPerHour);  // too young for Guard flag
  util::Rng rng(36);
  hs::GuardManager manager;
  manager.maintain(net.consensus, rng, kT0);
  EXPECT_TRUE(manager.guards().empty());
  EXPECT_FALSE(manager.pick(net.consensus, rng).has_value());
}

TEST(GuardManagerTest, PickReturnsMemberOfSet) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(37);
  hs::GuardManager manager;
  manager.maintain(net.consensus, rng, kT0);
  for (int i = 0; i < 20; ++i) {
    const auto pick = manager.pick(net.consensus, rng);
    ASSERT_TRUE(pick.has_value());
    bool member = false;
    for (const auto& g : manager.guards()) member |= g.relay == pick->relay;
    EXPECT_TRUE(member);
  }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

TEST(ClientTest, FetchSucceedsForPublishedService) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(38);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);

  hs::Client client(util::Ipv4(100, 1, 2, 3), 999);
  client.maintain(net.consensus, kT0);
  const auto outcome = client.fetch_descriptor(host.onion_address(),
                                               net.consensus, net.dirnet,
                                               kT0 + 30);
  EXPECT_TRUE(outcome.found);
  EXPECT_NE(outcome.guard, relay::kInvalidRelayId);
  EXPECT_NE(outcome.hsdir, relay::kInvalidRelayId);
  EXPECT_EQ(outcome.client_address, util::Ipv4(100, 1, 2, 3));
}

TEST(ClientTest, FetchFailsForUnknownOnion) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(39);
  hs::Client client(util::Ipv4(100, 1, 2, 4), 1000);
  client.maintain(net.consensus, kT0);
  // A valid-looking but never-published address.
  const auto key = crypto::KeyPair::generate(rng);
  const auto onion = crypto::onion_address(
      crypto::permanent_id_from_fingerprint(key.fingerprint()));
  const auto outcome =
      client.fetch_descriptor(onion, net.consensus, net.dirnet, kT0 + 30);
  EXPECT_FALSE(outcome.found);
}

TEST(ClientTest, FetchAfterRotationFailsUntilRepublish) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(40);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  const auto rotation =
      crypto::seconds_until_rotation(kT0, host.permanent_id());

  hs::Client client(util::Ipv4(100, 1, 2, 5), 1001);
  client.maintain(net.consensus, kT0);
  // After the period rolls, the *new* descriptor ids are not yet
  // published.
  const auto outcome = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + rotation + 1);
  EXPECT_FALSE(outcome.found);
  // Service republients, then the fetch succeeds.
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0 + rotation + 2);
  const auto retry = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + rotation + 3);
  EXPECT_TRUE(retry.found);
}

}  // namespace
}  // namespace torsim

namespace torsim {
namespace {

TEST(ClientTest, FetchCircuitHasMiddleRelay) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(60);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  hs::Client client(util::Ipv4(100, 1, 2, 6), 1002);
  client.maintain(net.consensus, kT0);
  const auto outcome = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + 30);
  EXPECT_NE(outcome.middle, relay::kInvalidRelayId);
  EXPECT_NE(outcome.middle, outcome.guard);
}

}  // namespace
}  // namespace torsim

namespace torsim {
namespace {

// ---------------------------------------------------------------------
// authenticated ("stealth") hidden services
// ---------------------------------------------------------------------

TEST(StealthServiceTest, CookieChangesDescriptorIds) {
  util::Rng rng(70);
  const auto key = crypto::KeyPair::generate(rng);
  const auto pid = crypto::permanent_id_from_fingerprint(key.fingerprint());
  const std::vector<std::uint8_t> cookie = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NE(crypto::descriptor_id(pid, 15000, 0),
            crypto::descriptor_id(pid, 15000, 0, cookie));
  // Different cookies, different ids.
  const std::vector<std::uint8_t> other = {9, 9, 9};
  EXPECT_NE(crypto::descriptor_id(pid, 15000, 0, cookie),
            crypto::descriptor_id(pid, 15000, 0, other));
  // Same cookie, deterministic.
  EXPECT_EQ(crypto::descriptor_id(pid, 15000, 0, cookie),
            crypto::descriptor_id(pid, 15000, 0, cookie));
}

TEST(StealthServiceTest, AuthorizedClientFetches) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(71);
  auto host = hs::ServiceHost::create(rng, kT0);
  const std::vector<std::uint8_t> cookie = {0xde, 0xad, 0xbe, 0xef};
  host.set_descriptor_cookie(cookie);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);

  hs::Client client(util::Ipv4(100, 2, 3, 4), 2001);
  client.maintain(net.consensus, kT0);
  const auto with_cookie = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + 10, cookie);
  EXPECT_TRUE(with_cookie.found);
}

TEST(StealthServiceTest, UnauthorizedClientCannotDeriveId) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(72);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.set_descriptor_cookie({0xde, 0xad, 0xbe, 0xef});
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);

  hs::Client client(util::Ipv4(100, 2, 3, 5), 2002);
  client.maintain(net.consensus, kT0);
  // Knows the onion address but not the cookie.
  const auto without = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + 10);
  EXPECT_FALSE(without.found);
  const auto wrong = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + 10,
      std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_FALSE(wrong.found);
}

TEST(StealthServiceTest, MeasuringHsdirCannotResolveCookieRequests) {
  // The Sec. V resolver derives descriptor IDs from harvested onion
  // addresses; an authenticated service's requests stay unresolvable —
  // one mechanism behind the paper's 80% unresolved request IDs.
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(73);
  auto host = hs::ServiceHost::create(rng, kT0);
  const std::vector<std::uint8_t> cookie = {7, 7, 7, 7};
  host.set_descriptor_cookie(cookie);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);

  // The analyst's derivation (onion-only) misses the service's actual
  // published ids.
  const auto pid = host.permanent_id();
  const auto period = crypto::time_period(kT0, pid);
  const auto actual_ids = host.current_descriptor_ids(kT0);
  for (std::uint8_t replica = 0; replica < 2; ++replica) {
    const auto derived = crypto::descriptor_id(pid, period, replica);
    for (const auto& actual : actual_ids) EXPECT_NE(derived, actual);
  }
}

}  // namespace
}  // namespace torsim

namespace torsim {
namespace {

TEST(GuardManagerTest, SamplingIsBandwidthWeighted) {
  // One guard candidate carries 50x the bandwidth of each of the others;
  // across many clients it should appear in guard sets far more often
  // than 1/N.
  util::Rng rng(80);
  relay::Registry registry;
  dirauth::Authority authority;
  const util::UnixTime past = kT0 - 10 * util::kSecondsPerDay;
  relay::RelayId fat = 0;
  for (int i = 0; i < 20; ++i) {
    relay::RelayConfig rc;
    rc.nickname = "g" + std::to_string(i);
    rc.address = util::Ipv4::random_public(rng);
    rc.bandwidth_kbps = i == 0 ? 5000.0 : 100.0;
    const auto id = registry.create(rc, rng, past);
    registry.get(id).set_online(true, past);
    if (i == 0) fat = id;
  }
  // Median bandwidth is 100, so everyone qualifies for Guard.
  const auto consensus = authority.build_consensus(registry, kT0);
  ASSERT_EQ(consensus.with_flag(dirauth::Flag::kGuard).size(), 20u);

  int fat_selected = 0;
  const int clients = 300;
  for (int c = 0; c < clients; ++c) {
    hs::GuardManager manager;
    util::Rng client_rng(1000 + static_cast<std::uint64_t>(c));
    manager.maintain(consensus, client_rng, kT0);
    for (const auto& g : manager.guards())
      if (g.relay == fat) ++fat_selected;
  }
  // Uniform sampling would give ~3/20 = 45 of 300; bandwidth weighting
  // (5000 of 6900 total) pushes the fat guard into nearly every set.
  EXPECT_GT(fat_selected, 200);
}

}  // namespace
}  // namespace torsim

namespace torsim {
namespace {

TEST(ClientCacheTest, SecondFetchSamePeriodServedFromCache) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(90);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  for (auto& [id, store] : net.dirnet.stores()) store.enable_logging(true);

  hs::Client client(util::Ipv4(100, 9, 9, 9), 3001);
  client.maintain(net.consensus, kT0);
  const auto first = client.fetch_descriptor(host.onion_address(),
                                             net.consensus, net.dirnet,
                                             kT0 + 10);
  ASSERT_TRUE(first.found);
  EXPECT_FALSE(first.from_cache);
  std::size_t logged_after_first = 0;
  for (const auto& [id, store] : net.dirnet.stores())
    logged_after_first += store.fetch_log().size();

  const auto second = client.fetch_descriptor(host.onion_address(),
                                              net.consensus, net.dirnet,
                                              kT0 + 600);
  EXPECT_TRUE(second.found);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.descriptor_id, first.descriptor_id);
  // No additional directory request was made.
  std::size_t logged_after_second = 0;
  for (const auto& [id, store] : net.dirnet.stores())
    logged_after_second += store.fetch_log().size();
  EXPECT_EQ(logged_after_second, logged_after_first);
}

TEST(ClientCacheTest, CacheExpiresWithPeriod) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(91);
  auto host = hs::ServiceHost::create(rng, kT0);
  host.maybe_publish(net.consensus, net.dirnet, rng, kT0);
  hs::Client client(util::Ipv4(100, 9, 9, 10), 3002);
  client.maintain(net.consensus, kT0);
  ASSERT_TRUE(client.fetch_descriptor(host.onion_address(), net.consensus,
                                      net.dirnet, kT0 + 10)
                  .found);
  const auto rotation =
      crypto::seconds_until_rotation(kT0, host.permanent_id());
  // New period: the cache must not serve the stale descriptor.
  const auto stale = client.fetch_descriptor(
      host.onion_address(), net.consensus, net.dirnet, kT0 + rotation + 5);
  EXPECT_FALSE(stale.from_cache);
  EXPECT_FALSE(stale.found);  // service has not republished yet
}

TEST(ClientCacheTest, FailedFetchNotCached) {
  MiniNet net(40, 10 * util::kSecondsPerDay);
  util::Rng rng(92);
  const auto key = crypto::KeyPair::generate(rng);
  const auto onion = crypto::onion_address(
      crypto::permanent_id_from_fingerprint(key.fingerprint()));
  hs::Client client(util::Ipv4(100, 9, 9, 11), 3003);
  client.maintain(net.consensus, kT0);
  EXPECT_FALSE(
      client.fetch_descriptor(onion, net.consensus, net.dirnet, kT0).found);
  const auto again =
      client.fetch_descriptor(onion, net.consensus, net.dirnet, kT0 + 60);
  EXPECT_FALSE(again.from_cache);
}

}  // namespace
}  // namespace torsim
