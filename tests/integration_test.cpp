// End-to-end integration: the full measurement pipeline of the paper on
// one small world — harvest onions with the shadowing attack, port-scan
// the harvested population, crawl + classify content, measure
// popularity through the attacker's HSDir logs, and geolocate
// deanonymised clients.
#include <gtest/gtest.h>

#include <set>

#include "attack/deanonymizer.hpp"
#include "attack/harvester.hpp"
#include "content/pipeline.hpp"
#include "geo/client_map.hpp"
#include "popularity/resolver.hpp"
#include "scan/cert_analysis.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "sim/world.hpp"

namespace torsim {
namespace {

TEST(IntegrationTest, HarvestThenMeasurePipeline) {
  // --- 1. A world hosting a small calibrated population ---------------
  population::PopulationConfig pc;
  pc.seed = 1000;
  pc.scale = 0.02;  // ~800 services
  auto pop = population::Population::generate(pc);

  sim::WorldConfig wc;
  wc.seed = 1001;
  wc.honest_relays = 200;
  sim::World world(wc);

  // Only *published* services run a live hidden-service host.
  std::set<std::string> published;
  for (const auto svc : pop.services()) {
    if (!svc.published_at_scan()) continue;
    world.add_service(crypto::KeyPair::from_public_bytes(
        svc.key().public_bytes()));
    published.emplace(svc.onion());
  }

  // --- 2. Shadow harvest ----------------------------------------------
  attack::HarvesterConfig hc;
  hc.num_ips = 12;
  hc.relays_per_ip = 12;
  attack::ShadowHarvester harvester(hc);
  harvester.deploy(world);
  const auto harvest = harvester.run(world, 24);

  // The harvest recovers a solid majority of the published population.
  std::size_t recovered = 0;
  for (const auto& onion : harvest.onions)
    if (published.count(onion)) ++recovered;
  EXPECT_GT(recovered, published.size() / 2);
  // And nothing that was never published.
  for (const auto& onion : harvest.onions)
    EXPECT_TRUE(published.count(onion)) << onion;

  // --- 3. Port scan of the harvested addresses ------------------------
  scan::PortScanner scanner;
  const auto scan_report = scanner.scan(pop);
  EXPECT_GT(scan_report.open_ports.count(net::kPortSkynet), 0);
  EXPECT_GT(scan_report.open_ports.count(net::kPortHttp), 0);

  const auto certs = scan::analyse_certificates(pop, scan_report);
  EXPECT_GT(certs.certificates_seen, 0);

  // --- 4. Crawl + classify --------------------------------------------
  scan::Crawler crawler;
  const auto crawl = crawler.crawl(pop, scan_report);
  EXPECT_GT(crawl.connected, 0);

  util::Rng rng(1002);
  const auto classifier = content::TopicClassifier::make_default(rng, 25, 100);
  content::ContentPipeline pipeline(classifier,
                                    content::LanguageDetector::instance());
  const auto content_report = pipeline.run(crawl.pages);
  EXPECT_GT(content_report.classified, 0u);
  EXPECT_GT(content_report.english, content_report.classifiable / 2);

  // --- 5. Popularity via request stream + resolution ------------------
  popularity::RequestGeneratorConfig rc;
  rc.seed = 1003;
  popularity::RequestGenerator generator(rc);
  const auto stream = generator.generate(pop);
  popularity::DescriptorResolver resolver;
  resolver.build_dictionary(pop);
  const auto resolution = resolver.resolve(stream, pop);
  ASSERT_FALSE(resolution.ranking.empty());
  EXPECT_EQ(resolution.ranking[0].label, "Goldnet");
  EXPECT_GT(resolution.unresolved_request_share(), 0.6);

  // --- 6. Deanonymise clients of the most popular service -------------
  // (the paper's Fig. 3: Goldnet clients on a map)
  const auto& goldnet_onion = resolution.ranking[0].onion;
  std::size_t goldnet_index = world.service_count();
  for (std::size_t i = 0; i < world.service_count(); ++i)
    if (world.service(i).onion_address() == goldnet_onion) goldnet_index = i;
  ASSERT_LT(goldnet_index, world.service_count());

  attack::DeanonymizerConfig dc;
  dc.guard_relays = 25;
  attack::ClientDeanonymizer deanonymizer(dc);
  deanonymizer.deploy_guards(world);
  deanonymizer.position_hsdirs(world, world.service(goldnet_index));
  world.step_hour();

  const auto geodb = geo::GeoDatabase::standard();
  util::Rng client_rng(1004);
  util::Rng trace_rng(1005);
  for (int i = 0; i < 80; ++i) {
    hs::Client client(geodb.sample_global(client_rng),
                      2000 + static_cast<std::uint64_t>(i));
    client.maintain(world.consensus(), world.now());
    for (int round = 0; round < 2; ++round) {
      const auto outcome = client.fetch_descriptor(
          goldnet_onion, world.consensus(), world.directories(), world.now());
      deanonymizer.observe_fetch(outcome, trace_rng);
    }
  }
  const auto& deanon = deanonymizer.report();
  EXPECT_GT(deanon.deanonymized, 0);

  // --- 7. Fig. 3: the client map --------------------------------------
  std::vector<util::Ipv4> clients;
  for (const auto addr : deanon.client_addresses)
    clients.emplace_back(util::Ipv4(addr));
  const auto map = geo::build_client_map(clients, geodb);
  EXPECT_EQ(map.total_clients,
            static_cast<std::int64_t>(deanon.client_addresses.size()));
  EXPECT_FALSE(map.rows().empty());
}

TEST(IntegrationTest, HarvestedRequestLogsFeedPopularity) {
  // Clients fetch through the directory network while the attacker holds
  // ring positions; the attacker's fetch logs line up with client
  // activity — the mechanism behind the paper's Sec. V numbers.
  sim::WorldConfig wc;
  wc.seed = 1101;
  wc.honest_relays = 150;
  sim::World world(wc);
  const auto index = world.add_service();

  attack::HarvesterConfig hc;
  hc.num_ips = 8;
  hc.relays_per_ip = 8;
  attack::ShadowHarvester harvester(hc);
  harvester.deploy(world);
  (void)harvester.run(world, 12);

  // Clients hammer the service.
  const auto onion = world.service(index).onion_address();
  for (int i = 0; i < 40; ++i) {
    hs::Client client(util::Ipv4::random_public(world.rng()),
                      3000 + static_cast<std::uint64_t>(i));
    client.maintain(world.consensus(), world.now());
    (void)client.fetch_descriptor(onion, world.consensus(),
                                  world.directories(), world.now());
  }

  std::int64_t logged = 0;
  for (const auto id : harvester.relay_ids()) {
    const auto* store = world.directories().find_store(id);
    if (store != nullptr)
      logged += static_cast<std::int64_t>(store->fetch_log().size());
  }
  // The attacker's relays saw at least some of the 40 fetches (they hold
  // a large fraction of the ring).
  EXPECT_GT(logged, 0);
}

}  // namespace
}  // namespace torsim

#include "popularity/harvest_stream.hpp"

namespace torsim {
namespace {

TEST(IntegrationTest, PopularityMeasuredFromHarvestLogsAlone) {
  // The paper's actual Sec. V pipeline: the only inputs are (a) the
  // harvested onion list and (b) the attacker HSDirs' fetch logs.
  sim::WorldConfig wc;
  wc.seed = 1201;
  wc.honest_relays = 150;
  sim::World world(wc);

  // Three services with very different popularity.
  struct Target {
    std::size_t index;
    int fetches;
  };
  std::vector<Target> targets = {{world.add_service(), 12},
                                 {world.add_service(), 4},
                                 {world.add_service(), 1}};

  attack::HarvesterConfig hc;
  hc.num_ips = 10;
  hc.relays_per_ip = 10;
  attack::ShadowHarvester harvester(hc);
  harvester.deploy(world);

  // Client activity happens *during* the rotation — as in the real
  // attack, where the 24 h ring sweep is exactly what exposes the
  // attacker to a representative sample of everyone's fetches.
  int seed = 0;
  world.set_post_consensus_hook([&](sim::World& w) {
    for (const auto& target : targets) {
      const auto onion = w.service(target.index).onion_address();
      for (int i = 0; i < target.fetches; ++i) {
        hs::Client client(util::Ipv4::random_public(w.rng()),
                          4000 + static_cast<std::uint64_t>(seed++));
        client.maintain(w.consensus(), w.now());
        (void)client.fetch_descriptor(onion, w.consensus(),
                                      w.directories(), w.now());
      }
    }
  });
  const auto harvest = harvester.run(world, 12);
  world.set_post_consensus_hook(nullptr);

  // Analyst side: onion list from the harvest, requests from the logs.
  const auto stream = popularity::stream_from_fetch_logs(
      world.directories(), harvester.relay_ids());
  ASSERT_GT(stream.requests.size(), 0u);

  popularity::ResolverConfig rc;
  rc.derive_from = world.now() - 3 * util::kSecondsPerDay;
  rc.derive_to = world.now() + util::kSecondsPerDay;
  popularity::DescriptorResolver resolver(rc);
  resolver.build_dictionary_from_onions(
      {harvest.onions.begin(), harvest.onions.end()});
  const auto report = resolver.resolve(stream);

  // The attacker's partial view still recovers the popularity *order*.
  ASSERT_GE(report.ranking.size(), 2u);
  std::map<std::string, std::int64_t> measured;
  for (const auto& row : report.ranking) measured[row.onion] = row.requests;
  const auto count_of = [&](std::size_t index) {
    return measured[world.service(index).onion_address()];
  };
  EXPECT_GT(count_of(targets[0].index), count_of(targets[1].index));
  EXPECT_GE(count_of(targets[1].index), count_of(targets[2].index));
}

}  // namespace
}  // namespace torsim
