#include <gtest/gtest.h>

#include <set>
#include <string>

#include "content/corpus.hpp"
#include "content/html.hpp"
#include "population/population.hpp"
#include "util/strings.hpp"

namespace torsim::population {
namespace {

// A mid-size population shared by the whole file (generation is the
// expensive part; the checks are cheap).
const Population& test_population() {
  static const Population pop = [] {
    PopulationConfig config;
    config.seed = 7;
    config.scale = 0.10;
    return Population::generate(config);
  }();
  return pop;
}

TEST(PopulationTest, TotalSizeMatchesScale) {
  const auto& pop = test_population();
  EXPECT_NEAR(static_cast<double>(pop.size()), 39824 * 0.10, 40.0);
}

TEST(PopulationTest, PublishedShareMatchesPaper) {
  const auto& pop = test_population();
  const double share = static_cast<double>(pop.published_count()) /
                       static_cast<double>(pop.size());
  EXPECT_NEAR(share, 24511.0 / 39824.0, 0.02);
}

TEST(PopulationTest, OnionAddressesUnique) {
  const auto& pop = test_population();
  std::set<std::string, std::less<>> onions;
  for (const auto svc : pop.services()) onions.emplace(svc.onion());
  EXPECT_EQ(onions.size(), pop.size());
}

TEST(PopulationTest, FindByOnion) {
  const auto& pop = test_population();
  const auto first = pop.service(0);
  const auto found = pop.find(first.onion());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->index(), first.index());
  EXPECT_FALSE(pop.find("nonexistentonion").has_value());
}

TEST(PopulationTest, SkynetBotsDominateAndAreDark) {
  const auto& pop = test_population();
  const auto bots = pop.of_class(ServiceClass::kSkynetBot);
  // 13,854/0.87 scaled by 0.10.
  EXPECT_NEAR(static_cast<double>(bots.size()), 13854 / 0.87 * 0.10, 20.0);
  for (const ServiceId id : bots) {
    const auto bot = pop.service(id);
    EXPECT_EQ(bot.profile().connect(net::kPortSkynet),
              net::ConnectResult::kAbnormalClose);
    EXPECT_TRUE(bot.profile().open_ports().empty());
  }
}

TEST(PopulationTest, ClassCountsFollowFig1Proportions) {
  const auto& pop = test_population();
  const auto count = [&](ServiceClass k) {
    return static_cast<double>(pop.of_class(k).size());
  };
  // Ratios between classes track Fig. 1 (inflation cancels).
  EXPECT_NEAR(count(ServiceClass::kSshHost) / count(ServiceClass::kTorChat),
              1238.0 / 385.0, 0.7);
  EXPECT_NEAR(count(ServiceClass::kTorChat) / count(ServiceClass::kIrcServer),
              385.0 / 113.0, 0.9);
  EXPECT_GT(count(ServiceClass::kWebSite), count(ServiceClass::kTorHostSite));
}

TEST(PopulationTest, PinnedTable2ServicesExist) {
  const auto& pop = test_population();
  for (const PopularService& row : table2_rows()) {
    bool found = false;
    for (const auto svc : pop.services()) {
      if (svc.paper_alias() == row.paper_onion) {
        found = true;
        EXPECT_EQ(svc.paper_rank(), row.paper_rank);
        EXPECT_DOUBLE_EQ(svc.requests_per_2h(),
                         static_cast<double>(row.requests_per_2h));
        EXPECT_TRUE(svc.published_at_scan());
      }
    }
    EXPECT_TRUE(found) << row.paper_onion;
  }
}

TEST(PopulationTest, GoldnetServicesShapedLikeThePaper) {
  const auto& pop = test_population();
  const auto goldnet = pop.of_class(ServiceClass::kGoldnetCnC);
  EXPECT_EQ(goldnet.size(), 9u);  // 6 "Goldnet" + 3 "Unknown" rows
  std::set<std::int64_t> uptimes;
  for (const ServiceId id : goldnet) {
    const auto svc = pop.service(id);
    const auto* web = svc.profile().service_at(net::kPortHttp);
    ASSERT_NE(web, nullptr);
    ASSERT_TRUE(web->http.has_value());
    EXPECT_EQ(web->http->status, 503);
    EXPECT_TRUE(web->http->server_status_page);
    // ~330 KB/s traffic, ~10 req/s as the paper measured.
    EXPECT_NEAR(web->http->traffic_bytes_per_sec, 330.0 * 1024, 6000);
    EXPECT_NEAR(web->http->requests_per_sec, 10.0, 1.0);
    EXPECT_GE(svc.physical_server(), 0);
    uptimes.insert(web->http->apache_uptime_seconds);
  }
  // Exactly two distinct Apache uptimes -> two physical servers.
  EXPECT_EQ(uptimes.size(), 2u);
}

TEST(PopulationTest, TorHostSitesCarrySharedCertificate) {
  const auto& pop = test_population();
  const auto sites = pop.of_class(ServiceClass::kTorHostSite);
  EXPECT_GT(sites.size(), 50u);
  int defaults = 0;
  for (const ServiceId id : sites) {
    const auto svc = pop.service(id);
    const auto* tls = svc.profile().service_at(net::kPortHttps);
    ASSERT_NE(tls, nullptr);
    ASSERT_TRUE(tls->certificate.has_value());
    EXPECT_EQ(tls->certificate->common_name, content::kTorHostCertCn);
    EXPECT_FALSE(tls->certificate->matches_requested_host);
    const auto* web = svc.profile().service_at(net::kPortHttp);
    ASSERT_NE(web, nullptr);
    if (content::strip_html(web->http->body) ==
        content::torhost_default_page())
      ++defaults;
  }
  // A solid majority still shows the hosting default page.
  EXPECT_GT(defaults, static_cast<int>(sites.size()) / 3);
}

TEST(PopulationTest, HttpsSitesIncludeDeanonymisingCerts) {
  const auto& pop = test_population();
  int public_dns = 0, matching = 0;
  for (const ServiceId id : pop.of_class(ServiceClass::kHttpsSite)) {
    const auto* tls = pop.service(id).profile().service_at(net::kPortHttps);
    ASSERT_NE(tls, nullptr);
    ASSERT_TRUE(tls->certificate.has_value());
    if (tls->certificate->common_name_is_public_dns()) ++public_dns;
    if (tls->certificate->matches_requested_host) ++matching;
  }
  EXPECT_NEAR(public_dns, 34 / 0.87 * 0.10, 2.0);
  EXPECT_GT(matching, 0);
}

TEST(PopulationTest, SilkroadPhishingPrefixGround) {
  const auto& pop = test_population();
  int prefixed = 0;
  for (const auto svc : pop.services())
    if (svc.label() == "SilkroadPhishing") {
      EXPECT_TRUE(util::starts_with(svc.onion(), "sil")) << svc.onion();
      ++prefixed;
    }
  EXPECT_GE(prefixed, 1);
}

TEST(PopulationTest, UnpublishedServicesAreInvisible) {
  const auto& pop = test_population();
  for (const ServiceId id : pop.of_class(ServiceClass::kUnpublished)) {
    EXPECT_FALSE(pop.service(id).published_at_scan());
    EXPECT_FALSE(pop.service(id).alive_at_crawl());
  }
  const double share =
      static_cast<double>(pop.of_class(ServiceClass::kUnpublished).size()) /
      static_cast<double>(pop.size());
  EXPECT_NEAR(share, 15313.0 / 39824.0, 0.02);
}

TEST(PopulationTest, RequestedShareOfPublishedNearTenPercent) {
  const auto& pop = test_population();
  std::size_t requested = 0;
  for (const auto svc : pop.services())
    if (svc.published_at_scan() && svc.requests_per_2h() > 0) ++requested;
  const double share = static_cast<double>(requested) /
                       static_cast<double>(pop.published_count());
  // Paper: ~10% of published descriptors were ever requested (3,140 of
  // 24,511 resolved onions = 12.8%).
  EXPECT_NEAR(share, 0.128, 0.03);
}

TEST(PopulationTest, DeterministicForSeed) {
  PopulationConfig config;
  config.seed = 11;
  config.scale = 0.01;
  const auto a = Population::generate(config);
  const auto b = Population::generate(config);
  ASSERT_EQ(a.size(), b.size());
  for (ServiceId i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.onion(i), b.onion(i));
}

TEST(PopulationTest, TinyScaleStillHasPinnedHead) {
  PopulationConfig config;
  config.seed = 12;
  config.scale = 0.005;
  const auto pop = Population::generate(config);
  EXPECT_EQ(pop.of_class(ServiceClass::kGoldnetCnC).size(), 9u);
  EXPECT_GE(pop.of_class(ServiceClass::kSkynetCnC).size(), 10u);
}

TEST(PopulationTest, ClassNamesAreStable) {
  EXPECT_STREQ(to_string(ServiceClass::kSkynetBot), "skynet-bot");
  EXPECT_STREQ(to_string(ServiceClass::kGoldnetCnC), "goldnet-cnc");
  EXPECT_STREQ(to_string(ServiceClass::kUnpublished), "unpublished");
}

}  // namespace
}  // namespace torsim::population
