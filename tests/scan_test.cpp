#include <gtest/gtest.h>

#include "scan/cert_analysis.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"

namespace torsim::scan {
namespace {

using population::Population;
using population::PopulationConfig;
using population::ServiceClass;

const Population& test_population() {
  static const Population pop = [] {
    PopulationConfig config;
    config.seed = 99;
    config.scale = 0.10;
    return Population::generate(config);
  }();
  return pop;
}

const ScanReport& test_scan() {
  static const ScanReport report = [] {
    PortScanner scanner;
    return scanner.scan(test_population());
  }();
  return report;
}

TEST(PortScannerTest, OnlyPublishedServicesScanned) {
  const auto& report = test_scan();
  EXPECT_EQ(static_cast<std::size_t>(report.descriptors_available),
            test_population().published_count());
}

TEST(PortScannerTest, CoverageNearPaper87Percent) {
  const auto& report = test_scan();
  EXPECT_NEAR(report.coverage, 0.87, 0.04);
}

TEST(PortScannerTest, SkynetPortDominatesFig1) {
  const auto& report = test_scan();
  const auto rows = report.figure1(5);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].first, "55080-Skynet");
  // >50% of all open ports, as the paper highlights.
  EXPECT_GT(static_cast<double>(rows[0].second),
            0.5 * static_cast<double>(report.onions_scanned) * 0.87 * 0.5);
  EXPECT_GT(report.open_ports.count(net::kPortSkynet),
            report.open_ports.count(net::kPortHttp));
}

TEST(PortScannerTest, Fig1OrderMatchesPaper) {
  const auto& report = test_scan();
  const auto& h = report.open_ports;
  EXPECT_GT(h.count(net::kPortHttp), h.count(net::kPortHttps));
  EXPECT_GT(h.count(net::kPortHttps), h.count(net::kPortTorChat));
  EXPECT_GT(h.count(net::kPortSsh), h.count(net::kPortTorChat));
  EXPECT_GT(h.count(net::kPortTorChat), h.count(net::kPort4050));
  EXPECT_GT(h.count(net::kPort4050), 0);
  EXPECT_GT(h.count(net::kPortIrc), 0);
}

TEST(PortScannerTest, CountsScaleWithPaperFig1) {
  const auto& report = test_scan();
  // At scale 0.10, inflation 1/0.87 and detection ~0.85 cancel to give
  // roughly scale * paper count.
  EXPECT_NEAR(static_cast<double>(report.open_ports.count(net::kPortSkynet)),
              1385.0, 140.0);
  EXPECT_NEAR(static_cast<double>(report.open_ports.count(net::kPortHttp)),
              403.0, 60.0);
  EXPECT_NEAR(static_cast<double>(report.open_ports.count(net::kPortSsh)),
              124.0, 30.0);
}

TEST(PortScannerTest, ManyUniquePortNumbers) {
  const auto& report = test_scan();
  // Paper: 495 unique ports at full scale; at 0.10 the rare-port tail
  // shrinks but stays well above the named handful.
  EXPECT_GT(report.unique_ports(), 40);
}

TEST(PortScannerTest, AbnormalCloseObservationsMarked) {
  const auto& report = test_scan();
  std::int64_t abnormal = 0;
  for (const auto& obs : report.observations)
    if (obs.result == net::ConnectResult::kAbnormalClose) {
      EXPECT_EQ(obs.port, net::kPortSkynet);
      ++abnormal;
    }
  EXPECT_EQ(abnormal, report.open_ports.count(net::kPortSkynet));
}

TEST(PortScannerTest, DeterministicForSeed) {
  PortScanner scanner(ScanConfig{.seed = 5, .scan_days = 8,
                                 .probe_timeout_probability = 0.02});
  const auto a = scanner.scan(test_population());
  const auto b = scanner.scan(test_population());
  EXPECT_EQ(a.open_ports.total(), b.open_ports.total());
}

TEST(PortScannerTest, MoreScanDaysLowerCoverage) {
  // Churn bites once per port-range day; the shape holds as days vary.
  ScanConfig one_day;
  one_day.scan_days = 1;
  const auto quick = PortScanner(one_day).scan(test_population());
  EXPECT_GT(quick.coverage, 0.5);
}

// ---------------------------------------------------------------------
// certificates
// ---------------------------------------------------------------------

TEST(CertAnalysisTest, TorHostCnDominatesMismatches) {
  const auto report = analyse_certificates(test_population(), test_scan());
  EXPECT_GT(report.certificates_seen, 0);
  EXPECT_GT(report.selfsigned_mismatch, 0);
  // Paper: 1,168 of 1,225 mismatching certs were the TorHost CN.
  EXPECT_GT(static_cast<double>(report.torhost_cn),
            0.8 * static_cast<double>(report.selfsigned_mismatch));
  EXPECT_LE(report.torhost_cn, report.selfsigned_mismatch);
}

TEST(CertAnalysisTest, PublicDnsCertificatesFound) {
  const auto report = analyse_certificates(test_population(), test_scan());
  // 34/0.87 * 0.10 * detection ~ 3.4.
  EXPECT_GE(report.public_dns_cn, 1);
  EXPECT_LE(report.public_dns_cn, 8);
  EXPECT_EQ(static_cast<std::size_t>(report.public_dns_cn),
            report.deanonymising.size());
  for (const auto& finding : report.deanonymising) {
    EXPECT_TRUE(finding.public_dns_cn);
    EXPECT_NE(finding.common_name.find('.'), std::string::npos);
  }
}

TEST(CertAnalysisTest, MatchingCnCounted) {
  const auto report = analyse_certificates(test_population(), test_scan());
  EXPECT_GT(report.matching_cn, 0);
}

// ---------------------------------------------------------------------
// crawler
// ---------------------------------------------------------------------

const CrawlReport& test_crawl() {
  static const CrawlReport report = [] {
    Crawler crawler;
    return crawler.crawl(test_population(), test_scan());
  }();
  return report;
}

TEST(CrawlerTest, ExcludesSkynetPort) {
  for (const auto& page : test_crawl().pages)
    EXPECT_NE(page.port, net::kPortSkynet);
}

TEST(CrawlerTest, FunnelShapeMatchesPaper) {
  const auto& report = test_crawl();
  // destinations > still_open > connected, with paper-like ratios
  // (8153 -> 7114 -> 6579 at full scale; "other" protocols fail the
  // HTTP connect step, so connected/destinations ~ 0.8).
  EXPECT_GT(report.destinations, report.still_open);
  EXPECT_GT(report.still_open, report.connected);
  const double connect_ratio =
      static_cast<double>(report.connected) /
      static_cast<double>(report.destinations);
  EXPECT_NEAR(connect_ratio, 6579.0 / 8153.0, 0.08);
}

TEST(CrawlerTest, SshBannersCollected) {
  int ssh_banners = 0;
  for (const auto& page : test_crawl().pages)
    if (page.port == net::kPortSsh) {
      EXPECT_EQ(page.text.substr(0, 4), "SSH-");
      ++ssh_banners;
    }
  EXPECT_GT(ssh_banners, 50);  // ~1094 at full scale -> ~110 at 0.10
}

TEST(CrawlerTest, TorChatAndIrcNotConnectable) {
  for (const auto& page : test_crawl().pages) {
    EXPECT_NE(page.port, net::kPortTorChat);
    EXPECT_NE(page.port, net::kPort4050);
  }
}

TEST(CrawlerTest, Port80DominatesTable1) {
  const auto& report = test_crawl();
  std::int64_t p80 = 0, p443 = 0, p22 = 0;
  for (const auto& page : report.pages) {
    if (page.port == 80) ++p80;
    if (page.port == 443) ++p443;
    if (page.port == 22) ++p22;
  }
  EXPECT_GT(p80, p443);
  EXPECT_GT(p443, 0);
  EXPECT_NEAR(static_cast<double>(p80) / static_cast<double>(p443),
              3741.0 / 1289.0, 1.2);
  EXPECT_GT(p22, 0);
}

TEST(CrawlerTest, DeadServicesNotCrawled) {
  const auto& pop = test_population();
  for (const auto& page : test_crawl().pages) {
    const auto svc = pop.find(page.onion);
    ASSERT_TRUE(svc.has_value());
    EXPECT_TRUE(svc->alive_at_crawl());
  }
}

}  // namespace
}  // namespace torsim::scan

#include "scan/schedule.hpp"

namespace torsim::scan {
namespace {

TEST(ScanScheduleTest, ContiguousPartitionCoversPortSpace) {
  for (int days : {1, 3, 8, 30}) {
    const auto schedule = ScanSchedule::contiguous(days);
    ASSERT_EQ(schedule.days(), days);
    // Ranges tile [0, 65535] without gaps or overlaps.
    std::uint32_t expected_lo = 0;
    for (const auto& range : schedule.ranges()) {
      EXPECT_EQ(range.lo, expected_lo);
      EXPECT_GE(range.hi, range.lo);
      expected_lo = static_cast<std::uint32_t>(range.hi) + 1;
    }
    EXPECT_EQ(expected_lo, 65536u);
  }
}

TEST(ScanScheduleTest, DayForPortMatchesRange) {
  const auto schedule = ScanSchedule::contiguous(8);
  for (const auto& range : schedule.ranges()) {
    EXPECT_EQ(schedule.day_for_port(range.lo), range.day);
    EXPECT_EQ(schedule.day_for_port(range.hi), range.day);
  }
  EXPECT_EQ(schedule.day_for_port(0), 0);
  EXPECT_EQ(schedule.day_for_port(65535), 7);
}

TEST(ScanScheduleTest, RejectsBadDayCounts) {
  EXPECT_THROW(ScanSchedule::contiguous(0), std::invalid_argument);
  EXPECT_THROW(ScanSchedule::contiguous(-1), std::invalid_argument);
}

TEST(ScanScheduleTest, WholePortClassScannedSameDay) {
  // The paper's "partially scanned on one day went off-line the day of
  // the next scan": a host down on day d misses exactly the ports in
  // day-d ranges. With contiguous ranges, every host's port 80 is
  // probed on the same day.
  const auto schedule = ScanSchedule::contiguous(8);
  const int day80 = schedule.day_for_port(80);
  const int day443 = schedule.day_for_port(443);
  EXPECT_EQ(day80, day443);  // both in the first range at 8 days
  EXPECT_NE(schedule.day_for_port(55080), day80);
}

}  // namespace
}  // namespace torsim::scan
