#include <gtest/gtest.h>

#include "dirauth/authority.hpp"
#include "dirspec/consensus_doc.hpp"
#include "dirspec/descriptor_doc.hpp"
#include "relay/registry.hpp"
#include "sim/world.hpp"

namespace torsim::dirspec {
namespace {

constexpr util::UnixTime kT0 = 1359676800;

dirauth::Consensus sample_consensus(int relays = 12) {
  util::Rng rng(1);
  relay::Registry registry;
  dirauth::Authority authority;
  for (int i = 0; i < relays; ++i) {
    relay::RelayConfig rc;
    rc.nickname = "node" + std::to_string(i);
    rc.address = util::Ipv4::random_public(rng);
    rc.bandwidth_kbps = 100.0 + i;
    const auto id = registry.create(rc, rng, kT0 - 30 * 3600);
    registry.get(id).set_online(true, kT0 - 30 * 3600);
  }
  return authority.build_consensus(registry, kT0);
}

// ---------------------------------------------------------------------
// time parsing (added for dirspec)
// ---------------------------------------------------------------------

TEST(ParseUtcTest, RoundTrip) {
  for (util::UnixTime t : {0L, 1359936000L, 1696204800L}) {
    EXPECT_EQ(util::parse_utc(util::format_utc(t)), t);
  }
}

TEST(ParseUtcTest, RejectsMalformed) {
  EXPECT_THROW(util::parse_utc("2013-02-04"), std::invalid_argument);
  EXPECT_THROW(util::parse_utc("2013/02/04 10:00:00"), std::invalid_argument);
  EXPECT_THROW(util::parse_utc("2013-13-04 10:00:00"), std::out_of_range);
  EXPECT_THROW(util::parse_utc("2013-02-04 10:00:0x"), std::invalid_argument);
}

TEST(FlagsFromStringTest, RoundTrip) {
  dirauth::FlagSet set = 0;
  set = with_flag(set, dirauth::Flag::kFast);
  set = with_flag(set, dirauth::Flag::kHSDir);
  set = with_flag(set, dirauth::Flag::kRunning);
  EXPECT_EQ(dirauth::flags_from_string(dirauth::flags_to_string(set)), set);
  EXPECT_EQ(dirauth::flags_from_string(""), 0);
  EXPECT_THROW(dirauth::flags_from_string("Bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// consensus documents
// ---------------------------------------------------------------------

TEST(ConsensusDocTest, RenderContainsExpectedLines) {
  const auto consensus = sample_consensus(3);
  const auto text = render_consensus(consensus);
  EXPECT_NE(text.find("network-status-version 3"), std::string::npos);
  EXPECT_NE(text.find("valid-after 2013-02-01 00:00:00"), std::string::npos);
  EXPECT_NE(text.find("directory-footer"), std::string::npos);
  EXPECT_NE(text.find("w Bandwidth="), std::string::npos);
}

TEST(ConsensusDocTest, RoundTripPreservesEverything) {
  const auto consensus = sample_consensus();
  const auto parsed = parse_consensus(render_consensus(consensus));
  EXPECT_EQ(parsed.valid_after(), consensus.valid_after());
  ASSERT_EQ(parsed.size(), consensus.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto& a = parsed.entries()[i];
    const auto& b = consensus.entries()[i];
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.nickname, b.nickname);
    EXPECT_EQ(a.address, b.address);
    EXPECT_EQ(a.or_port, b.or_port);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_NEAR(a.bandwidth_kbps, b.bandwidth_kbps, 0.5);
  }
  EXPECT_EQ(parsed.hsdir_count(), consensus.hsdir_count());
}

TEST(ConsensusDocTest, RoundTripPreservesRingSemantics) {
  const auto consensus = sample_consensus(20);
  const auto parsed = parse_consensus(render_consensus(consensus));
  crypto::DescriptorId id{};
  id[0] = 0x5a;
  const auto a = consensus.responsible_hsdirs(id);
  const auto b = parsed.responsible_hsdirs(id);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i]->fingerprint, b[i]->fingerprint);
}

TEST(ConsensusDocTest, ParseErrorsCarryLineNumbers) {
  try {
    parse_consensus("network-status-version 3\nvalid-after nonsense\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    // parse_utc throws its own message here; any exception is fine as
    // long as parsing fails loudly.
    SUCCEED();
  }
  EXPECT_THROW(parse_consensus("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_consensus("network-status-version 3\n"
                               "valid-after 2013-02-01 00:00:00\n"
                               "r only three fields\n"),
               std::invalid_argument);
}

TEST(ConsensusDocTest, ParseRejectsMissingFooter) {
  const auto consensus = sample_consensus(2);
  auto text = render_consensus(consensus);
  text = text.substr(0, text.find("directory-footer"));
  EXPECT_THROW(parse_consensus(text), std::invalid_argument);
}

TEST(ConsensusDocTest, ArchiveRoundTrip) {
  sim::WorldConfig wc;
  wc.seed = 3;
  wc.honest_relays = 40;
  sim::World world(wc);
  world.run_hours(5);
  const auto text = render_archive(world.archive());
  const auto parsed = parse_archive(text);
  ASSERT_EQ(parsed.size(), world.archive().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.at(i).valid_after(), world.archive().at(i).valid_after());
    EXPECT_EQ(parsed.at(i).size(), world.archive().at(i).size());
  }
}

TEST(ConsensusDocTest, EmptyArchiveParses) {
  EXPECT_EQ(parse_archive("").size(), 0u);
  EXPECT_EQ(parse_archive("\n\n").size(), 0u);
}

// ---------------------------------------------------------------------
// descriptor documents
// ---------------------------------------------------------------------

TEST(DescriptorDocTest, RoundTrip) {
  util::Rng rng(4);
  const auto key = crypto::KeyPair::generate(rng);
  std::vector<crypto::Fingerprint> intro;
  for (int i = 0; i < 3; ++i) {
    crypto::Fingerprint fp;
    rng.fill_bytes(fp.data(), fp.size());
    intro.push_back(fp);
  }
  const auto original = hsdir::make_descriptor(key, intro, 1, kT0);
  const auto parsed = parse_descriptor(render_descriptor(original));
  EXPECT_EQ(parsed.descriptor_id, original.descriptor_id);
  EXPECT_EQ(parsed.permanent_id, original.permanent_id);
  EXPECT_EQ(parsed.service_public_key, original.service_public_key);
  EXPECT_EQ(parsed.introduction_points, original.introduction_points);
  EXPECT_EQ(parsed.replica, original.replica);
  EXPECT_EQ(parsed.time_period, original.time_period);
  EXPECT_EQ(parsed.published, original.published);
  EXPECT_EQ(parsed.onion_address(), original.onion_address());
}

TEST(DescriptorDocTest, NoIntroPointsRoundTrip) {
  util::Rng rng(5);
  const auto key = crypto::KeyPair::generate(rng);
  const auto original = hsdir::make_descriptor(key, {}, 0, kT0);
  const auto parsed = parse_descriptor(render_descriptor(original));
  EXPECT_TRUE(parsed.introduction_points.empty());
}

TEST(DescriptorDocTest, DetectsForgedDescriptorId) {
  util::Rng rng(6);
  const auto key = crypto::KeyPair::generate(rng);
  auto descriptor = hsdir::make_descriptor(key, {}, 0, kT0);
  // Tamper: claim a different descriptor id.
  descriptor.descriptor_id[0] ^= 0xff;
  EXPECT_THROW(parse_descriptor(render_descriptor(descriptor)),
               std::invalid_argument);
}

TEST(DescriptorDocTest, DetectsWrongReplica) {
  util::Rng rng(7);
  const auto key = crypto::KeyPair::generate(rng);
  auto descriptor = hsdir::make_descriptor(key, {}, 0, kT0);
  auto text = render_descriptor(descriptor);
  // Flip the replica field only: id check must fail.
  const auto pos = text.find(":0\n");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = '1';
  EXPECT_THROW(parse_descriptor(text), std::invalid_argument);
}

TEST(DescriptorDocTest, RejectsTruncated) {
  EXPECT_THROW(parse_descriptor(""), std::invalid_argument);
  EXPECT_THROW(parse_descriptor("rendezvous-service-descriptor abc\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace torsim::dirspec

namespace torsim::dirspec {
namespace {

// ---------------------------------------------------------------------
// mutation robustness: random single-byte corruptions of a rendered
// document must never crash the parser — they either parse to something
// (benign field change) or throw invalid_argument.
// ---------------------------------------------------------------------

class ParserMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserMutationTest, ConsensusParserNeverCrashes) {
  const auto consensus = sample_consensus(6);
  const std::string text = render_consensus(consensus);
  util::Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const auto pos = rng.index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const auto parsed = parse_consensus(mutated);
      // If it parsed, basic invariants still hold.
      for (std::size_t i = 1; i < parsed.size(); ++i)
        EXPECT_LE(parsed.entries()[i - 1].fingerprint,
                  parsed.entries()[i].fingerprint);
    } catch (const std::invalid_argument&) {
      // Rejection is the expected outcome for most mutations.
    } catch (const std::out_of_range&) {
      // e.g. a corrupted date field.
    }
  }
}

TEST_P(ParserMutationTest, DescriptorParserNeverCrashes) {
  util::Rng key_rng(9100 + static_cast<std::uint64_t>(GetParam()));
  const auto key = crypto::KeyPair::generate(key_rng);
  const auto descriptor = hsdir::make_descriptor(key, {}, 0, kT0);
  const std::string text = render_descriptor(descriptor);
  util::Rng rng(9200 + static_cast<std::uint64_t>(GetParam()));
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const auto pos = rng.index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      (void)parse_descriptor(mutated);
      ++accepted;
    } catch (const std::exception&) {
    }
  }
  // The embedded integrity check (descriptor id vs permanent key) makes
  // almost every content mutation detectable.
  EXPECT_LT(accepted, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutationTest, ::testing::Range(0, 3));

// ---------------------------------------------------------------------
// structural robustness: truncation at every line boundary, reordered
// keyword lines, and corrupted base16/base32 fields must all surface as
// parse errors (or benign parses), never UB or a crash.
// ---------------------------------------------------------------------

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n' && i + 1 < text.size()) starts.push_back(i + 1);
  return starts;
}

TEST(ParserTruncationTest, ConsensusTruncatedAtEveryLineBoundary) {
  const std::string text = render_consensus(sample_consensus(5));
  for (std::size_t start : line_starts(text)) {
    if (start == 0) continue;
    const std::string truncated = text.substr(0, start);
    try {
      // A prefix that happens to end right after the footer is a valid
      // document; every other truncation must throw.
      (void)parse_consensus(truncated);
      EXPECT_NE(truncated.find("directory-footer"), std::string::npos);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(ParserTruncationTest, DescriptorTruncatedAtEveryLineBoundary) {
  util::Rng rng(41);
  const auto key = crypto::KeyPair::generate(rng);
  crypto::Fingerprint fp;
  rng.fill_bytes(fp.data(), fp.size());
  const std::string text =
      render_descriptor(hsdir::make_descriptor(key, {fp}, 0, kT0));
  const auto starts = line_starts(text);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    // Dropping any suffix of lines loses a required keyword: the parser
    // must reject every strict prefix.
    EXPECT_THROW((void)parse_descriptor(text.substr(0, starts[i])),
                 std::invalid_argument)
        << "prefix of " << i << " lines";
  }
}

TEST(ParserReorderTest, ConsensusKeywordLinesReordered) {
  const std::string text = render_consensus(sample_consensus(5));
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl == std::string::npos ? text.size() : nl + 1;
  }
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    auto shuffled = lines;
    // Swap two random lines — keyword order is part of the grammar.
    const auto a = rng.index(shuffled.size());
    const auto b = rng.index(shuffled.size());
    std::swap(shuffled[a], shuffled[b]);
    std::string doc;
    for (const auto& line : shuffled) doc += line + "\n";
    try {
      const auto parsed = parse_consensus(doc);
      // A benign swap (e.g. a==b) must still yield a sane document.
      EXPECT_LE(parsed.size(), lines.size());
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(ParserCorruptionTest, CorruptedBase16FingerprintRejected) {
  const auto consensus = sample_consensus(4);
  const std::string text = render_consensus(consensus);
  // The "r <nick> <fp-hex> ..." router lines carry base16 fingerprints;
  // replace hex digits with non-hex garbage.
  const auto r_pos = text.find("\nr ");
  ASSERT_NE(r_pos, std::string::npos);
  const auto fp_pos = text.find(' ', text.find(' ', r_pos + 1) + 1) + 1;
  for (const char garbage : {'!', 'z', 'G', '~'}) {
    std::string corrupted = text;
    corrupted[fp_pos] = garbage;
    EXPECT_THROW((void)parse_consensus(corrupted), std::invalid_argument)
        << garbage;
  }
}

TEST(ParserCorruptionTest, CorruptedBase32DescriptorIdRejected) {
  util::Rng rng(43);
  const auto key = crypto::KeyPair::generate(rng);
  const std::string text =
      render_descriptor(hsdir::make_descriptor(key, {}, 0, kT0));
  const auto id_pos = text.find(' ') + 1;  // after the leading keyword
  // '0', '1', '8', '9' and punctuation are outside the base32 alphabet.
  for (const char garbage : {'0', '1', '8', '9', '!', '_'}) {
    std::string corrupted = text;
    corrupted[id_pos] = garbage;
    EXPECT_THROW((void)parse_descriptor(corrupted), std::invalid_argument)
        << garbage;
  }
}

TEST(ParserRoundTripTest, SeededDescriptorRoundTripProperty) {
  // Property: for any generated descriptor (random key, intro count,
  // replica, publication time), render -> parse is the identity.
  util::Rng rng(44);
  for (int trial = 0; trial < 30; ++trial) {
    const auto key = crypto::KeyPair::generate(rng);
    std::vector<crypto::Fingerprint> intro(rng.uniform_int(0, 5));
    for (auto& fp : intro) rng.fill_bytes(fp.data(), fp.size());
    const auto replica =
        static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    const util::UnixTime published =
        kT0 + rng.uniform_int(0, 72) * util::kSecondsPerHour;
    const auto original =
        hsdir::make_descriptor(key, intro, replica, published);
    const auto parsed = parse_descriptor(render_descriptor(original));
    EXPECT_EQ(parsed.descriptor_id, original.descriptor_id);
    EXPECT_EQ(parsed.introduction_points, original.introduction_points);
    EXPECT_EQ(parsed.replica, original.replica);
    EXPECT_EQ(parsed.published, original.published);
  }
}

TEST(ParserRoundTripTest, SeededConsensusRoundTripProperty) {
  for (int relays : {1, 2, 7, 19}) {
    const auto consensus = sample_consensus(relays);
    const auto parsed = parse_consensus(render_consensus(consensus));
    ASSERT_EQ(parsed.size(), consensus.size()) << relays;
    for (std::size_t i = 0; i < parsed.size(); ++i)
      EXPECT_EQ(parsed.entries()[i].fingerprint,
                consensus.entries()[i].fingerprint);
  }
}

}  // namespace
}  // namespace torsim::dirspec
