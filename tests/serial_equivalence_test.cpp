// Serial-equivalence goldens for the parallel fan-out call sites: the
// FIG1 port scan, the FIG2 content pipeline, the TAB2 descriptor-ID
// dictionary, and the HSDir ring lookups must produce *byte-identical*
// output at threads = 1 (the legacy serial path) and threads = 4 —
// same seed, same CSV, same summary. This is the determinism contract
// of util::parallel (see docs/concurrency.md) checked end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "attack/harvester.hpp"
#include "content/pipeline.hpp"
#include "dirauth/authority.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"
#include "popularity/request_generator.hpp"
#include "popularity/resolver.hpp"
#include "relay/registry.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "util/csv.hpp"
#include "util/encoding.hpp"
#include "util/memo.hpp"

namespace torsim {
namespace {

using population::Population;
using population::PopulationConfig;

const Population& test_population() {
  static const Population pop = [] {
    PopulationConfig config;
    config.seed = 77;
    config.scale = 0.05;
    return Population::generate(config);
  }();
  return pop;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Writes rows through CsvWriter and hands back the file's exact bytes,
/// so equality below really is byte-identity of the emitted artifact.
template <typename WriteRows>
std::string csv_bytes(const std::string& tag, const WriteRows& write_rows) {
  const std::string path = "/tmp/torsim_equiv_" + tag + ".csv";
  {
    util::CsvWriter csv(path);
    write_rows(csv);
  }
  const std::string bytes = read_file(path);
  std::remove(path.c_str());
  return bytes;
}

// ---------------------------------------------------------------------
// FIG1 — port scan
// ---------------------------------------------------------------------

std::string scan_summary_csv(const scan::ScanReport& report,
                             const std::string& tag) {
  return csv_bytes(tag, [&](util::CsvWriter& csv) {
    csv.typed_row("descriptors_available", report.descriptors_available);
    csv.typed_row("onions_scanned", report.onions_scanned);
    csv.typed_row("onions_with_open_ports", report.onions_with_open_ports);
    csv.typed_row("coverage", report.coverage);
    csv.typed_row("open_ports_total", report.total_open_ports());
    csv.typed_row("unique_ports", report.unique_ports());
    for (const auto& [label, count] : report.figure1(5))
      csv.typed_row(label, count);
    // Every single observation, in report order.
    for (const auto& obs : report.observations)
      csv.typed_row(obs.onion, obs.port, static_cast<int>(obs.result),
                    obs.scan_day, static_cast<int>(obs.protocol));
  });
}

scan::ScanReport run_scan(int threads) {
  scan::PortScanner scanner(scan::ScanConfig{.seed = 4242,
                                             .threads = threads});
  return scanner.scan(test_population());
}

TEST(SerialEquivalenceTest, Fig1PortScanByteIdentical) {
  const auto serial = run_scan(1);
  const auto parallel = run_scan(4);
  EXPECT_EQ(serial.descriptors_available, parallel.descriptors_available);
  EXPECT_EQ(serial.observations.size(), parallel.observations.size());
  EXPECT_EQ(scan_summary_csv(serial, "fig1_serial"),
            scan_summary_csv(parallel, "fig1_parallel"));
}

TEST(SerialEquivalenceTest, Fig1HardwareThreadsAlsoIdentical) {
  // threads <= 0 resolves to hardware_concurrency — whatever that is on
  // the host, output must not change.
  EXPECT_EQ(scan_summary_csv(run_scan(1), "fig1_s"),
            scan_summary_csv(run_scan(0), "fig1_hw"));
}

// ---------------------------------------------------------------------
// FIG1 under fault injection — the injector's decisions are pure
// functions of (plan seed, event key), so the equivalence contract must
// survive any FaultPlan, including the typed-failure log.
// ---------------------------------------------------------------------

std::string faulted_scan_csv(const scan::ScanReport& report,
                             const std::string& tag) {
  return csv_bytes(tag, [&](util::CsvWriter& csv) {
    csv.typed_row("coverage", report.coverage);
    csv.typed_row("open_ports_total", report.total_open_ports());
    csv.typed_row("probe_timeouts", report.probe_timeouts);
    csv.typed_row("probes_closed", report.probes_closed);
    csv.typed_row("probes_corrupt", report.probes_corrupt);
    csv.typed_row("probes_recovered", report.probes_recovered);
    for (const auto& obs : report.observations)
      csv.typed_row(obs.onion, obs.port, static_cast<int>(obs.result),
                    obs.scan_day, static_cast<int>(obs.protocol));
    // The full typed-failure log, in report order.
    for (const auto& record : report.failures)
      csv.typed_row(fault::to_string(record.kind), record.key, record.detail,
                    record.attempt);
  });
}

scan::ScanReport run_faulted_scan(int threads) {
  scan::ScanConfig config;
  config.seed = 4242;
  config.threads = threads;
  config.faults = fault::FaultPlan::profile("moderate");
  return scan::PortScanner(config).scan(test_population());
}

TEST(SerialEquivalenceTest, Fig1FaultInjectedScanByteIdentical) {
  const auto serial = run_faulted_scan(1);
  const auto parallel = run_faulted_scan(4);
  EXPECT_FALSE(serial.failures.empty());
  EXPECT_EQ(serial.failures, parallel.failures);
  EXPECT_EQ(faulted_scan_csv(serial, "fig1_fault_serial"),
            faulted_scan_csv(parallel, "fig1_fault_parallel"));
  EXPECT_EQ(faulted_scan_csv(run_faulted_scan(0), "fig1_fault_hw"),
            faulted_scan_csv(parallel, "fig1_fault_parallel2"));
}

// ---------------------------------------------------------------------
// FIG2 — content pipeline
// ---------------------------------------------------------------------

const scan::CrawlReport& test_crawl() {
  static const scan::CrawlReport report = [] {
    scan::Crawler crawler;
    return crawler.crawl(test_population(), run_scan(1));
  }();
  return report;
}

std::string pipeline_summary_csv(const content::PipelineResult& result,
                                 const std::string& tag) {
  return csv_bytes(tag, [&](util::CsvWriter& csv) {
    csv.typed_row("destinations_total", result.destinations_total);
    csv.typed_row("connected", result.connected);
    csv.typed_row("excluded_short", result.excluded_short);
    csv.typed_row("excluded_ssh_banner", result.excluded_ssh_banner);
    csv.typed_row("excluded_dup443", result.excluded_dup443);
    csv.typed_row("excluded_error", result.excluded_error);
    csv.typed_row("classifiable", result.classifiable);
    csv.typed_row("english", result.english);
    csv.typed_row("torhost_default", result.torhost_default);
    csv.typed_row("classified", result.classified);
    for (int i = 0; i < content::kNumLanguages; ++i)
      csv.typed_row("lang", i, result.language_counts[i]);
    for (int i = 0; i < content::kNumTopics; ++i)
      csv.typed_row("topic", i, result.topic_counts[i]);
    for (const auto& s : result.services)
      csv.typed_row(s.onion, s.port, static_cast<int>(s.language),
                    static_cast<int>(s.topic), s.topic_confidence);
  });
}

content::PipelineResult run_pipeline(int threads) {
  static const content::TopicClassifier classifier = [] {
    util::Rng rng(5);
    return content::TopicClassifier::make_default(rng, 25, 100);
  }();
  content::ContentPipeline pipeline(classifier,
                                    content::LanguageDetector::instance(),
                                    {.threads = threads});
  return pipeline.run(test_crawl().pages);
}

TEST(SerialEquivalenceTest, Fig2PipelineByteIdentical) {
  const auto serial = run_pipeline(1);
  const auto parallel = run_pipeline(4);
  EXPECT_EQ(serial.classified, parallel.classified);
  EXPECT_EQ(serial.services.size(), parallel.services.size());
  EXPECT_EQ(pipeline_summary_csv(serial, "fig2_serial"),
            pipeline_summary_csv(parallel, "fig2_parallel"));
}

// ---------------------------------------------------------------------
// TAB2 — descriptor-ID dictionary + resolution
// ---------------------------------------------------------------------

std::string resolution_summary_csv(const popularity::ResolutionReport& report,
                                   const std::string& tag) {
  return csv_bytes(tag, [&](util::CsvWriter& csv) {
    csv.typed_row("total_requests", report.total_requests);
    csv.typed_row("unique_descriptor_ids", report.unique_descriptor_ids);
    csv.typed_row("resolved_descriptor_ids", report.resolved_descriptor_ids);
    csv.typed_row("resolved_onions", report.resolved_onions);
    csv.typed_row("resolved_requests", report.resolved_requests);
    for (const auto& row : report.ranking)
      csv.typed_row(row.onion, row.label, row.requests, row.paper_rank);
  });
}

TEST(SerialEquivalenceTest, Tab2ResolutionByteIdentical) {
  popularity::RequestGenerator generator;
  const auto stream = generator.generate(test_population());

  popularity::DescriptorResolver serial(
      popularity::ResolverConfig{.threads = 1});
  serial.build_dictionary(test_population());
  popularity::DescriptorResolver parallel(
      popularity::ResolverConfig{.threads = 4});
  parallel.build_dictionary(test_population());

  EXPECT_EQ(serial.dictionary_size(), parallel.dictionary_size());
  EXPECT_EQ(
      resolution_summary_csv(serial.resolve(stream, test_population()),
                             "tab2_serial"),
      resolution_summary_csv(parallel.resolve(stream, test_population()),
                             "tab2_parallel"));
}

TEST(SerialEquivalenceTest, Tab2DictionaryEntriesIdentical) {
  // Same onions, duplicated to exercise the last-writer-wins insert
  // order the serial loop defines.
  std::vector<std::string> onions;
  for (const auto service : test_population().services()) {
    onions.emplace_back(service.onion());
    if (onions.size() >= 200) break;
  }
  onions.insert(onions.end(), onions.begin(), onions.begin() + 50);

  popularity::DescriptorResolver serial(
      popularity::ResolverConfig{.threads = 1});
  serial.build_dictionary_from_onions(onions);
  popularity::DescriptorResolver parallel(
      popularity::ResolverConfig{.threads = 4});
  parallel.build_dictionary_from_onions(onions);
  ASSERT_EQ(serial.dictionary_size(), parallel.dictionary_size());

  // Spot-check the join itself: every derived id resolves identically.
  popularity::DescriptorResolver probe(
      popularity::ResolverConfig{.threads = 1});
  probe.build_dictionary_from_onions(onions);
  EXPECT_EQ(probe.dictionary_size(), serial.dictionary_size());
}

// ---------------------------------------------------------------------
// Observability: the metrics registry and the sim-time trace are part
// of the determinism contract — the emitted bytes must not depend on
// the thread count (ISSUE 4 acceptance: byte-identical at 1/4/8).
// ---------------------------------------------------------------------

std::pair<std::string, std::string> scan_metrics_bytes(int threads) {
  obs::MetricsRegistry metrics;
  scan::PortScanner scanner(scan::ScanConfig{
      .seed = 4242, .threads = threads, .metrics = &metrics});
  scanner.scan(test_population());
  return {metrics.to_text(), metrics.to_json()};
}

TEST(SerialEquivalenceTest, ScanMetricsByteIdenticalAcrossThreads) {
  const auto serial = scan_metrics_bytes(1);
  EXPECT_FALSE(serial.first.empty());
  for (int threads : {4, 8}) {
    const auto parallel = scan_metrics_bytes(threads);
    EXPECT_EQ(serial.first, parallel.first) << threads << " threads";
    EXPECT_EQ(serial.second, parallel.second) << threads << " threads";
  }
}

std::pair<std::string, std::string> harvest_obs_bytes(int threads) {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  sim::WorldConfig wc;
  wc.seed = 99;
  wc.honest_relays = 120;
  wc.threads = threads;
  wc.metrics = &metrics;
  wc.trace = &trace;
  sim::World world(wc);
  for (int i = 0; i < 12; ++i) world.add_service();
  attack::ShadowHarvester harvester(attack::HarvesterConfig{
      .num_ips = 2, .relays_per_ip = 4, .metrics = &metrics,
      .trace = &trace});
  harvester.deploy(world);
  harvester.run(world, 6);
  return {metrics.to_json(), trace.chrome_json()};
}

TEST(SerialEquivalenceTest, HarvestMetricsAndTraceByteIdentical) {
  const auto serial = harvest_obs_bytes(1);
  EXPECT_NE(serial.second.find("step_hour"), std::string::npos);
  EXPECT_NE(serial.second.find("harvest.ripen"), std::string::npos);
  for (int threads : {4, 8}) {
    const auto parallel = harvest_obs_bytes(threads);
    EXPECT_EQ(serial.first, parallel.first) << threads << " threads";
    EXPECT_EQ(serial.second, parallel.second) << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// Cache equivalence: the memo layer (descriptor-id derivations and ring
// walks, docs/performance.md) may only skip work, never change results.
// Every deterministic artifact — the TAB2 resolution CSV, the scan
// metrics, the harvest metrics + trace — must be byte-identical
// cache-on vs cache-off at threads 1, 4, and 8 (ISSUE 5 acceptance).
// ---------------------------------------------------------------------

TEST(SerialEquivalenceTest, Tab2ResolutionCacheOnOffByteIdentical) {
  const auto run = [&](bool cache, int threads) {
    const util::MemoEnabledGuard guard(cache);
    popularity::RequestGenerator generator;
    const auto stream = generator.generate(test_population());
    popularity::DescriptorResolver resolver(
        popularity::ResolverConfig{.threads = threads});
    resolver.build_dictionary(test_population());
    return resolution_summary_csv(
        resolver.resolve(stream, test_population()),
        "tab2_cache" + std::to_string(cache) + "_t" + std::to_string(threads));
  };
  for (int threads : {1, 4, 8}) {
    EXPECT_EQ(run(true, threads), run(false, threads))
        << threads << " threads";
  }
}

TEST(SerialEquivalenceTest, ScanMetricsCacheOnOffByteIdentical) {
  for (int threads : {1, 4, 8}) {
    const auto cached = [&] {
      const util::MemoEnabledGuard guard(true);
      return scan_metrics_bytes(threads);
    }();
    const auto uncached = [&] {
      const util::MemoEnabledGuard guard(false);
      return scan_metrics_bytes(threads);
    }();
    EXPECT_EQ(cached.first, uncached.first) << threads << " threads";
    EXPECT_EQ(cached.second, uncached.second) << threads << " threads";
  }
}

TEST(SerialEquivalenceTest, HarvestObsCacheOnOffByteIdentical) {
  for (int threads : {1, 4, 8}) {
    const auto cached = [&] {
      const util::MemoEnabledGuard guard(true);
      return harvest_obs_bytes(threads);
    }();
    const auto uncached = [&] {
      const util::MemoEnabledGuard guard(false);
      return harvest_obs_bytes(threads);
    }();
    EXPECT_EQ(cached.first, uncached.first) << threads << " threads";
    EXPECT_EQ(cached.second, uncached.second) << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// HSDir ring lookups (the publish fan-out)
// ---------------------------------------------------------------------

TEST(SerialEquivalenceTest, ResponsibleHsdirsBatchMatchesSerialLoop) {
  constexpr util::UnixTime kT0 = 1359676800;  // 2013-02-01
  util::Rng rng(20130204);
  relay::Registry registry;
  for (int i = 0; i < 40; ++i) {
    relay::RelayConfig rc;
    rc.nickname = "n" + std::to_string(i);
    rc.address = util::Ipv4::random_public(rng);
    rc.bandwidth_kbps = 100.0;
    const auto id =
        registry.create(rc, rng, kT0 - 30 * util::kSecondsPerHour);
    registry.get(id).set_online(true, kT0 - 30 * util::kSecondsPerHour);
  }
  dirauth::Authority authority;
  const auto consensus = authority.build_consensus(registry, kT0);

  std::vector<crypto::DescriptorId> ids(64);
  for (auto& id : ids) rng.fill_bytes(id.data(), id.size());

  const auto batched = consensus.responsible_hsdirs_batch(ids, 4);
  ASSERT_EQ(batched.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(batched[i], consensus.responsible_hsdirs(ids[i])) << i;
}

}  // namespace
}  // namespace torsim
