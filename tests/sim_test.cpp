#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace torsim::sim {
namespace {

WorldConfig small_config(std::uint64_t seed = 1) {
  WorldConfig config;
  config.seed = seed;
  config.honest_relays = 120;
  return config;
}

TEST(WorldTest, BootstrapProducesFlaggedConsensus) {
  World world(small_config());
  const auto& consensus = world.consensus();
  EXPECT_GT(consensus.size(), 100u);  // most relays online & unique IPs
  EXPECT_GT(consensus.hsdir_count(), 40u);
  EXPECT_FALSE(consensus.with_flag(dirauth::Flag::kGuard).empty());
  EXPECT_EQ(world.now(), default_start_time());
}

TEST(WorldTest, DeterministicAcrossRuns) {
  World a(small_config(77));
  World b(small_config(77));
  a.run_hours(5);
  b.run_hours(5);
  ASSERT_EQ(a.consensus().size(), b.consensus().size());
  for (std::size_t i = 0; i < a.consensus().size(); ++i)
    EXPECT_EQ(a.consensus().entries()[i].fingerprint,
              b.consensus().entries()[i].fingerprint);
}

TEST(WorldTest, StepAdvancesClockAndArchives) {
  World world(small_config());
  const auto t0 = world.now();
  world.run_hours(3);
  EXPECT_EQ(world.now(), t0 + 3 * util::kSecondsPerHour);
  EXPECT_EQ(world.archive().size(), 4u);  // bootstrap + 3 steps
}

TEST(WorldTest, ArchiveRecordingCanBeDisabled) {
  auto config = small_config();
  config.record_archive = false;
  World world(config);
  world.run_hours(3);
  EXPECT_TRUE(world.archive().empty());
}

TEST(WorldTest, ChurnTogglesRelays) {
  auto config = small_config(3);
  config.hourly_down_probability = 0.5;
  World world(config);
  const auto before = world.registry().online_ids().size();
  world.step_hour();
  const auto after = world.registry().online_ids().size();
  EXPECT_LT(after, before);  // with p=0.5, ~half go down
}

TEST(WorldTest, ChurnExemptRelayStaysUp) {
  auto config = small_config(4);
  config.hourly_down_probability = 1.0;  // everything dies...
  World world(config);
  world.set_churn_exempt(0, true);       // ...except relay 0
  EXPECT_TRUE(world.churn_exempt(0));
  world.step_hour();
  EXPECT_TRUE(world.registry().get(0).online());
  std::size_t online = world.registry().online_ids().size();
  EXPECT_EQ(online, 1u);
  EXPECT_THROW(world.set_churn_exempt(99999, true), std::out_of_range);
}

TEST(WorldTest, AddServicePublishesImmediately) {
  World world(small_config(5));
  const auto index = world.add_service();
  const auto& host = world.service(index);
  // The descriptor is fetchable right away.
  const auto ids = host.current_descriptor_ids(world.now());
  relay::RelayId hsdir;
  const auto d = world.directories().fetch_from(world.consensus(), ids[0],
                                                world.now(), hsdir);
  EXPECT_TRUE(d.has_value());
  EXPECT_EQ(world.service_count(), 1u);
}

TEST(WorldTest, ServiceStaysReachableAcrossDays) {
  World world(small_config(6));
  const auto index = world.add_service();
  world.run_hours(48);
  const auto& host = world.service(index);
  const auto ids = host.current_descriptor_ids(world.now());
  relay::RelayId hsdir;
  const auto d = world.directories().fetch_from(world.consensus(), ids[0],
                                                world.now(), hsdir);
  EXPECT_TRUE(d.has_value());
}

TEST(WorldTest, PostConsensusHookRuns) {
  World world(small_config(8));
  int calls = 0;
  world.set_post_consensus_hook([&](World&) { ++calls; });
  world.run_hours(2);
  EXPECT_EQ(calls, 2);
}

TEST(WorldTest, PinnedServiceKeyIsUsed) {
  World world(small_config(9));
  util::Rng rng(55);
  auto key = crypto::KeyPair::generate(rng);
  const auto expected_onion = crypto::onion_address(
      crypto::permanent_id_from_fingerprint(key.fingerprint()));
  const auto index = world.add_service(std::move(key));
  EXPECT_EQ(world.service(index).onion_address(), expected_onion);
}

}  // namespace
}  // namespace torsim::sim
