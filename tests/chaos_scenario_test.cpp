// Chaos/property harness for the fault-injection engine (ctest label
// "chaos"): dozens of randomized FaultPlans thrown at the real
// pipelines, checking the cross-cutting invariants rather than specific
// numbers:
//
//   1. No crash, no hang, no sanitizer finding, whatever the plan.
//   2. Typed accounting — every probe/publish/connect ends in success
//      or a typed outcome; nothing disappears silently.
//   3. Serial equivalence — threads=1 and threads=4 stay byte-identical
//      under injection.
//   4. Reproducibility — the same seed + plan produces the identical
//      typed-failure log twice.
//   5. Monotone degradation — Fig. 1 coverage is non-increasing as the
//      connection-fault rate sweeps 0% -> 50%.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hs/rendezvous.hpp"
#include "population/population.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "sim/world.hpp"

namespace torsim {
namespace {

constexpr int kChaosPlans = 24;

const population::Population& chaos_population() {
  static const population::Population pop = [] {
    population::PopulationConfig config;
    config.seed = 4711;
    config.scale = 0.03;
    return population::Population::generate(config);
  }();
  return pop;
}

std::int64_t true_open_ports(const population::Population& pop) {
  std::int64_t total = 0;
  for (const auto svc : pop.services())
    if (svc.published_at_scan())
      total +=
          static_cast<std::int64_t>(svc.profile().scannable_ports().size());
  return total;
}

/// A random but fully seeded plan: every run of the harness sees the
/// same `kChaosPlans` plans.
fault::FaultPlan random_plan(util::Rng& rng) {
  fault::FaultPlan plan;
  plan.seed = rng.next();
  plan.connect_drop_rate = rng.uniform01() * 0.3;
  plan.connect_timeout_rate = rng.uniform01() * 0.4;
  plan.connect_corrupt_rate = rng.uniform01() * 0.1;
  plan.hsdir_flaky_fraction = rng.uniform01() * 0.5;
  plan.hsdir_outage_rate = rng.uniform01();
  plan.publish_loss_rate = rng.uniform01() * 0.4;
  plan.publish_delay_rate = rng.uniform01() * 0.3;
  plan.circuit_stall_rate = rng.uniform01() * 0.3;
  plan.retry.max_attempts = static_cast<int>(rng.uniform_int(1, 5));
  return plan;
}

TEST(ChaosScanTest, RandomPlansKeepEveryInvariant) {
  util::Rng rng(20130214);
  const std::int64_t truth = true_open_ports(chaos_population());
  for (int i = 0; i < kChaosPlans; ++i) {
    const fault::FaultPlan plan = random_plan(rng);
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan.describe());

    scan::ScanConfig serial;
    serial.threads = 1;
    serial.faults = plan;
    scan::ScanConfig parallel = serial;
    parallel.threads = 4;
    const auto a = scan::PortScanner(serial).scan(chaos_population());
    const auto b = scan::PortScanner(parallel).scan(chaos_population());
    const auto c = scan::PortScanner(serial).scan(chaos_population());

    // (3) serial equivalence and (4) reproducibility, including the
    // typed-failure log.
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.failures, c.failures);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.observations.size(), b.observations.size());
    EXPECT_EQ(a.probes_recovered, b.probes_recovered);

    // (2) typed accounting: every scannable port of every scanned
    // service ends up open, timed-out, or closed.
    EXPECT_EQ(a.open_ports.total() + a.probe_timeouts + a.probes_closed,
              truth);
    EXPECT_EQ(a.probe_timeouts, a.timeout_ports.total());
    EXPECT_EQ(a.probes_closed, a.closed_ports.total());
  }
}

TEST(ChaosCrawlTest, RandomPlansKeepTypedAccounting) {
  util::Rng rng(20130215);
  const auto scan_report =
      scan::PortScanner(scan::ScanConfig{}).scan(chaos_population());
  for (int i = 0; i < kChaosPlans; ++i) {
    fault::FaultPlan plan = random_plan(rng);
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan.describe());
    scan::CrawlConfig config;
    config.faults = plan;
    config.revisit_attempts = plan.retry.max_attempts;
    const auto a = scan::Crawler(config).crawl(chaos_population(),
                                               scan_report);
    const auto b = scan::Crawler(config).crawl(chaos_population(),
                                               scan_report);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.connected, b.connected);
    EXPECT_EQ(a.pages.size(), static_cast<std::size_t>(a.connected));
    EXPECT_GE(a.failed_timeout, 0);
    EXPECT_GE(a.failed_closed, 0);
    EXPECT_LE(a.connected + a.failed_closed, a.still_open);
    // Corruption keeps the page but never invents extra ones.
    EXPECT_LE(a.corrupt_pages, a.connected);
  }
}

TEST(ChaosSweepTest, Fig1CoverageMonotoneNonIncreasing) {
  // Acceptance sweep: connection-fault rate 0% -> 50%. Threshold
  // coupling makes this *exactly* monotone, not just statistically.
  double last = 2.0;
  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    scan::ScanConfig config;
    config.faults.connect_drop_rate = rate / 3.0;
    config.faults.connect_timeout_rate = 2.0 * rate / 3.0;
    const auto report = scan::PortScanner(config).scan(chaos_population());
    EXPECT_LE(report.coverage, last) << "rate " << rate;
    last = report.coverage;
  }
}

TEST(ChaosWorldTest, SimulationSurvivesHostilePlans) {
  util::Rng rng(20130216);
  for (int i = 0; i < 4; ++i) {
    fault::FaultPlan plan = random_plan(rng);
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan.describe());
    sim::WorldConfig wc;
    wc.honest_relays = 60;
    wc.faults = plan;
    sim::World world(wc);
    for (int s = 0; s < 5; ++s) world.add_service();
    world.run_hours(12);
    // Publish losses are typed, never silent: the per-service counter
    // agrees with the directory network's log.
    int logged = 0;
    for (const auto& record : world.directories().failure_log())
      logged += record.kind == fault::FailureKind::kPublishLost;
    EXPECT_GE(logged, 0);
    for (std::size_t s = 0; s < world.service_count(); ++s)
      EXPECT_GE(world.service(s).last_publish_lost(), 0);
  }
}

TEST(ChaosRendezvousTest, StormOfConnectionsAllTypedAndReproducible) {
  const auto run = [](const fault::FaultPlan& plan) {
    sim::WorldConfig wc;
    wc.honest_relays = 80;
    wc.faults = plan;
    sim::World world(wc);
    const auto target = world.add_service();
    world.run_hours(2);

    std::vector<hs::Client> clients;
    for (int i = 0; i < 10; ++i) {
      clients.emplace_back(util::Ipv4::random_public(world.rng()),
                           9000 + static_cast<std::uint64_t>(i));
      clients.back().maintain(world.consensus(), world.now());
    }
    world.service(target).maintain_guards(world.consensus(), world.rng(),
                                          world.now());

    std::vector<int> outcomes;
    for (int round = 0; round < 5; ++round) {
      for (auto& client : clients) {
        const auto outcome = hs::rendezvous_connect(
            client, world.service(target), world.consensus(),
            world.directories(), world.rng(), world.now());
        // Invariant: success XOR a typed failure — never a silent drop.
        EXPECT_NE(outcome.success,
                  outcome.failure != hs::RendezvousFailure::kNone);
        EXPECT_GE(outcome.rp_attempts, 1);
        EXPECT_GE(outcome.backoff_spent, 0);
        outcomes.push_back(outcome.success
                               ? -1
                               : static_cast<int>(outcome.failure));
      }
      world.step_hour();
    }
    return outcomes;
  };

  util::Rng rng(20130217);
  for (int i = 0; i < 3; ++i) {
    fault::FaultPlan plan = random_plan(rng);
    plan.circuit_stall_rate = 0.3 + plan.circuit_stall_rate;  // storm-grade
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan.describe());
    const auto first = run(plan);
    const auto second = run(plan);
    EXPECT_EQ(first, second);  // same plan + seed => same typed outcomes
    bool saw_failure = false;
    for (int o : first) saw_failure |= o >= 0;
    EXPECT_TRUE(saw_failure);  // the storm actually bites
  }
}

}  // namespace
}  // namespace torsim
