#include <gtest/gtest.h>

#include "content/corpus.hpp"
#include "content/language_detector.hpp"
#include "content/page_generator.hpp"
#include "content/pipeline.hpp"
#include "content/topic_classifier.hpp"
#include "util/strings.hpp"

namespace torsim::content {
namespace {

// ---------------------------------------------------------------------
// taxonomy & corpus
// ---------------------------------------------------------------------

TEST(TopicsTest, PaperPercentagesSumTo100) {
  double total = 0;
  for (double p : paper_topic_percentages()) total += p;
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(TopicsTest, NamesAndIndicesRoundTrip) {
  for (int i = 0; i < kNumTopics; ++i) {
    const Topic t = topic_from_index(i);
    EXPECT_FALSE(topic_name(t).empty());
    EXPECT_EQ(static_cast<int>(t), i);
  }
  EXPECT_THROW(topic_from_index(-1), std::out_of_range);
  EXPECT_THROW(topic_from_index(kNumTopics), std::out_of_range);
}

TEST(TopicsTest, LanguageSharesSumToOne) {
  double total = 0;
  for (double s : paper_language_shares()) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(paper_language_shares()[0], 0.84);  // English
  for (int i = 1; i < kNumLanguages; ++i)
    EXPECT_LT(paper_language_shares()[i], 0.03);  // each minority < 3%
}

TEST(CorpusTest, EveryTopicHasVocabulary) {
  for (int i = 0; i < kNumTopics; ++i) {
    const Topic t = topic_from_index(i);
    EXPECT_GE(topic_keywords(t).size(), 20u) << topic_name(t);
    EXPECT_GE(topic_phrases(t).size(), 3u) << topic_name(t);
  }
}

TEST(CorpusTest, EveryLanguageHasWords) {
  for (int i = 0; i < kNumLanguages; ++i) {
    const Language l = language_from_index(i);
    EXPECT_GE(language_words(l).size(), 40u) << language_name(l);
  }
}

TEST(CorpusTest, TopicVocabulariesMostlyDisjoint) {
  // Overlapping keywords blur classification; require pairwise overlap
  // below 20% of the smaller vocabulary.
  for (int a = 0; a < kNumTopics; ++a) {
    for (int b = a + 1; b < kNumTopics; ++b) {
      const auto& ka = topic_keywords(topic_from_index(a));
      const auto& kb = topic_keywords(topic_from_index(b));
      int shared = 0;
      for (const auto& w : ka)
        for (const auto& v : kb)
          if (w == v) ++shared;
      const double limit =
          0.2 * static_cast<double>(std::min(ka.size(), kb.size()));
      EXPECT_LE(shared, limit)
          << topic_name(topic_from_index(a)) << " vs "
          << topic_name(topic_from_index(b));
    }
  }
}

TEST(CorpusTest, TorHostPageLongEnoughToClassify) {
  EXPECT_GE(util::count_words(torhost_default_page()), 20u);
}

TEST(CorpusTest, SshBannerIsShort) {
  EXPECT_LT(util::count_words(ssh_banner()), 20u);
}

// ---------------------------------------------------------------------
// page generator
// ---------------------------------------------------------------------

TEST(PageGeneratorTest, EnglishPageHasRequestedLength) {
  PageGenerator gen;
  util::Rng rng(1);
  const auto page = gen.generate_english(Topic::kDrugs, 150, rng);
  const auto words = util::count_words(page);
  EXPECT_GE(words, 150u);
  EXPECT_LT(words, 170u);
}

TEST(PageGeneratorTest, PageContainsTopicVocabulary) {
  PageGenerator gen;
  util::Rng rng(2);
  const auto page = gen.generate_english(Topic::kWeapons, 200, rng);
  int hits = 0;
  for (const auto& kw : topic_keywords(Topic::kWeapons))
    if (page.find(kw) != std::string::npos) ++hits;
  EXPECT_GE(hits, 5);
}

TEST(PageGeneratorTest, StubIsUnderTwentyWords) {
  PageGenerator gen;
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i)
    EXPECT_LT(util::count_words(gen.generate_stub(rng)), 20u);
}

TEST(PageGeneratorTest, NonEnglishUsesLanguageWords) {
  PageGenerator gen;
  util::Rng rng(4);
  const auto page = gen.generate(Topic::kDrugs, Language::kGerman, 100, rng);
  int hits = 0;
  for (const auto& w : language_words(Language::kGerman))
    if (page.find(w) != std::string::npos) ++hits;
  EXPECT_GE(hits, 10);
}

// ---------------------------------------------------------------------
// language detector (parameterized over all 17 languages)
// ---------------------------------------------------------------------

class LanguageDetectorParamTest : public ::testing::TestWithParam<int> {};

TEST_P(LanguageDetectorParamTest, DetectsGeneratedPages) {
  const Language lang = language_from_index(GetParam());
  PageGenerator gen;
  util::Rng rng(500 + GetParam());
  const LanguageDetector& detector = LanguageDetector::instance();
  int correct = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto page = gen.generate(Topic::kOther, lang, 120, rng);
    if (detector.detect(page).language == lang) ++correct;
  }
  EXPECT_GE(correct, 17) << language_name(lang);  // >= 85% accuracy
}

INSTANTIATE_TEST_SUITE_P(AllLanguages, LanguageDetectorParamTest,
                         ::testing::Range(0, kNumLanguages));

TEST(LanguageDetectorTest, EmptyTextFallsBackToEnglish) {
  const auto guess = LanguageDetector::instance().detect("");
  EXPECT_EQ(guess.language, Language::kEnglish);
  EXPECT_EQ(guess.confidence, 0.0);
}

TEST(LanguageDetectorTest, TorHostDefaultIsEnglish) {
  EXPECT_EQ(
      LanguageDetector::instance().detect(torhost_default_page()).language,
      Language::kEnglish);
}

TEST(LanguageDetectorTest, CyrillicIsRussian) {
  EXPECT_EQ(LanguageDetector::instance()
                .detect("это очень важный документ для всех людей")
                .language,
            Language::kRussian);
}

// ---------------------------------------------------------------------
// topic classifier (parameterized over all 18 topics)
// ---------------------------------------------------------------------

class TopicClassifierParamTest : public ::testing::TestWithParam<int> {
 protected:
  static const TopicClassifier& classifier() {
    static const TopicClassifier instance = [] {
      util::Rng rng(42);
      return TopicClassifier::make_default(rng);
    }();
    return instance;
  }
};

TEST_P(TopicClassifierParamTest, ClassifiesGeneratedPages) {
  const Topic topic = topic_from_index(GetParam());
  PageGenerator gen;
  util::Rng rng(900 + GetParam());
  int correct = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto page = gen.generate_english(topic, 150, rng);
    if (classifier().classify(page).topic == topic) ++correct;
  }
  EXPECT_GE(correct, 16) << topic_name(topic);  // >= 80% accuracy
}

INSTANTIATE_TEST_SUITE_P(AllTopics, TopicClassifierParamTest,
                         ::testing::Range(0, kNumTopics));

TEST(TopicClassifierTest, RequiresTraining) {
  TopicClassifier classifier;
  EXPECT_FALSE(classifier.trained());
  EXPECT_THROW(classifier.classify("anything"), std::logic_error);
  EXPECT_THROW(classifier.train({}), std::invalid_argument);
}

TEST(TopicClassifierTest, TrainOnExplicitDocs) {
  TopicClassifier classifier;
  classifier.train({{Topic::kGames, "chess poker lottery casino bets"},
                    {Topic::kScience, "physics chemistry theorem quantum"}});
  EXPECT_EQ(classifier.classify("a chess tournament with poker").topic,
            Topic::kGames);
  EXPECT_EQ(classifier.classify("the quantum physics theorem").topic,
            Topic::kScience);
}

// ---------------------------------------------------------------------
// pipeline exclusion rules (hand-built destinations)
// ---------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : classifier_([] {
          util::Rng rng(43);
          return TopicClassifier::make_default(rng, 25, 100);
        }()),
        pipeline_(classifier_, LanguageDetector::instance()) {}

  static CrawlDestination dest(std::string onion, std::uint16_t port,
                               std::string text, bool connected = true,
                               bool error = false) {
    CrawlDestination d;
    d.onion = std::move(onion);
    d.port = port;
    d.connected = connected;
    d.text = std::move(text);
    d.error_page = error;
    return d;
  }

  std::string long_page(Topic topic, int seed) {
    PageGenerator gen;
    util::Rng rng(static_cast<std::uint64_t>(seed));
    return gen.generate_english(topic, 120, rng);
  }

  TopicClassifier classifier_;
  ContentPipeline pipeline_;
};

TEST_F(PipelineTest, ExcludesShortPages) {
  const auto result = pipeline_.run({dest("aaaa", 80, "too short")});
  EXPECT_EQ(result.excluded_short, 1u);
  EXPECT_EQ(result.classifiable, 0u);
}

TEST_F(PipelineTest, CountsSshBanners) {
  const auto result = pipeline_.run(
      {dest("aaaa", 22, std::string(ssh_banner()))});
  EXPECT_EQ(result.excluded_short, 1u);
  EXPECT_EQ(result.excluded_ssh_banner, 1u);
}

TEST_F(PipelineTest, Excludes443Duplicates) {
  const auto page = long_page(Topic::kDrugs, 1);
  const auto result = pipeline_.run(
      {dest("aaaa", 80, page), dest("aaaa", 443, page)});
  EXPECT_EQ(result.excluded_dup443, 1u);
  EXPECT_EQ(result.classifiable, 1u);  // the port-80 copy survives
}

TEST_F(PipelineTest, Keeps443WithDistinctContent) {
  const auto result = pipeline_.run(
      {dest("aaaa", 80, long_page(Topic::kDrugs, 2)),
       dest("aaaa", 443, long_page(Topic::kGames, 3))});
  EXPECT_EQ(result.excluded_dup443, 0u);
  EXPECT_EQ(result.classifiable, 2u);
}

TEST_F(PipelineTest, ExcludesErrorPages) {
  std::string padded(html_error_page());
  padded += " the server encountered an error and could not complete your "
            "request please try again later or contact the administrator "
            "of this hidden service for more information about the outage";
  const auto result = pipeline_.run({dest("aaaa", 80, padded, true, true)});
  EXPECT_EQ(result.excluded_error, 1u);
  EXPECT_EQ(result.classifiable, 0u);
}

TEST_F(PipelineTest, SkipsUnconnectedDestinations) {
  const auto result = pipeline_.run(
      {dest("aaaa", 80, long_page(Topic::kDrugs, 4), false)});
  EXPECT_EQ(result.connected, 0u);
  EXPECT_EQ(result.destinations_total, 1u);
}

TEST_F(PipelineTest, SeparatesTorHostDefaults) {
  const auto result = pipeline_.run(
      {dest("aaaa", 80, std::string(torhost_default_page()))});
  EXPECT_EQ(result.torhost_default, 1u);
  EXPECT_EQ(result.classified, 0u);
  EXPECT_EQ(result.english, 1u);
}

TEST_F(PipelineTest, NonEnglishCountedButNotClassified) {
  PageGenerator gen;
  util::Rng rng(44);
  const auto page = gen.generate(Topic::kDrugs, Language::kGerman, 100, rng);
  const auto result = pipeline_.run({dest("aaaa", 80, page)});
  EXPECT_EQ(result.classifiable, 1u);
  EXPECT_EQ(result.english, 0u);
  EXPECT_EQ(result.classified, 0u);
  EXPECT_EQ(result.language_counts[static_cast<int>(Language::kGerman)], 1u);
}

TEST_F(PipelineTest, ClassifiesEnglishPagesIntoTopics) {
  const auto result = pipeline_.run(
      {dest("aaaa", 80, long_page(Topic::kDrugs, 5)),
       dest("bbbb", 80, long_page(Topic::kAdult, 6)),
       dest("cccc", 80, long_page(Topic::kPolitics, 7))});
  EXPECT_EQ(result.classified, 3u);
  EXPECT_EQ(result.topic_counts[static_cast<int>(Topic::kDrugs)], 1u);
  EXPECT_EQ(result.topic_counts[static_cast<int>(Topic::kAdult)], 1u);
  EXPECT_EQ(result.topic_counts[static_cast<int>(Topic::kPolitics)], 1u);
  ASSERT_EQ(result.services.size(), 3u);
  EXPECT_EQ(result.services[0].onion, "aaaa");
}

TEST_F(PipelineTest, TableIPortCounts) {
  const auto result = pipeline_.run(
      {dest("aaaa", 80, long_page(Topic::kDrugs, 8)),
       dest("bbbb", 443, long_page(Topic::kGames, 9)),
       dest("cccc", 8080, long_page(Topic::kArt, 10))});
  EXPECT_EQ(result.port_counts.count(80), 1);
  EXPECT_EQ(result.port_counts.count(443), 1);
  EXPECT_EQ(result.port_counts.count(8080), 1);
}

TEST_F(PipelineTest, PercentagesNormalize) {
  const auto result = pipeline_.run(
      {dest("aaaa", 80, long_page(Topic::kDrugs, 11)),
       dest("bbbb", 80, long_page(Topic::kDrugs, 12))});
  const auto pct = result.topic_percentages();
  double total = 0;
  for (double p : pct) total += p;
  EXPECT_NEAR(total, 100.0, 1e-9);
  // Empty result stays at zero (no NaN).
  PipelineResult empty;
  for (double p : empty.topic_percentages()) EXPECT_DOUBLE_EQ(p, 0.0);
}

}  // namespace
}  // namespace torsim::content

// ---------------------------------------------------------------------
// centroid classifier (the "second tool", as the paper used uClassify
// alongside Mallet) — appended suite
// ---------------------------------------------------------------------
#include "content/centroid_classifier.hpp"

namespace torsim::content {
namespace {

class CentroidClassifierParamTest : public ::testing::TestWithParam<int> {
 protected:
  static const CentroidClassifier& classifier() {
    static const CentroidClassifier instance = [] {
      util::Rng rng(52);
      return CentroidClassifier::make_default(rng);
    }();
    return instance;
  }
};

TEST_P(CentroidClassifierParamTest, ClassifiesGeneratedPages) {
  const Topic topic = topic_from_index(GetParam());
  PageGenerator gen;
  util::Rng rng(1200 + GetParam());
  int correct = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto page = gen.generate_english(topic, 150, rng);
    if (classifier().classify(page).topic == topic) ++correct;
  }
  EXPECT_GE(correct, 16) << topic_name(topic);
}

INSTANTIATE_TEST_SUITE_P(AllTopics, CentroidClassifierParamTest,
                         ::testing::Range(0, kNumTopics));

TEST(CentroidClassifierTest, RequiresTraining) {
  CentroidClassifier classifier;
  EXPECT_FALSE(classifier.trained());
  EXPECT_THROW(classifier.classify("x"), std::logic_error);
  EXPECT_THROW(classifier.train({}), std::invalid_argument);
}

TEST(CentroidClassifierTest, ExplicitDocs) {
  CentroidClassifier classifier;
  classifier.train({{Topic::kGames, "chess poker lottery casino bets"},
                    {Topic::kScience, "physics chemistry theorem quantum"}});
  EXPECT_EQ(classifier.classify("poker and chess night").topic, Topic::kGames);
  EXPECT_EQ(classifier.classify("quantum chemistry research").topic,
            Topic::kScience);
}

TEST(CentroidClassifierTest, AgreesWithNaiveBayes) {
  util::Rng rng(53);
  const auto bayes = TopicClassifier::make_default(rng, 30, 120);
  const auto centroid = CentroidClassifier::make_default(rng, 30, 120);
  util::Rng eval_rng(54);
  const auto report = measure_agreement(bayes, centroid, eval_rng, 10, 150);
  EXPECT_EQ(report.documents, 10u * kNumTopics);
  // The two families should agree on the vast majority of pages — the
  // cross-validation confidence the paper leaned on.
  EXPECT_GT(report.agreement_rate(), 0.85);
  // And agreement is almost always *correct* agreement.
  EXPECT_GT(static_cast<double>(report.agreed_correct) /
                static_cast<double>(report.agreed),
            0.95);
}

}  // namespace
}  // namespace torsim::content

#include "content/html.hpp"

namespace torsim::content {
namespace {

TEST(HtmlTest, WrapStripRoundTrip) {
  const std::string body = "plain words with no markup at all";
  EXPECT_EQ(strip_html(wrap_html("any title", body)), body);
  EXPECT_EQ(strip_html(wrap_html("", "")), "");
}

TEST(HtmlTest, TitleDoesNotLeakIntoText) {
  const auto stripped = strip_html(wrap_html("SECRET TITLE", "the body"));
  EXPECT_EQ(stripped, "the body");
  EXPECT_EQ(stripped.find("SECRET"), std::string::npos);
}

TEST(HtmlTest, RemovesNestedTags) {
  EXPECT_EQ(strip_html("<p>hello <b>bold</b> world</p>"),
            "hello bold world");
  EXPECT_EQ(strip_html("no tags here"), "no tags here");
}

TEST(HtmlTest, DecodesBasicEntities) {
  EXPECT_EQ(strip_html("a &amp; b &lt;c&gt; &quot;d&quot; &#39;e&#39;"),
            "a & b <c> \"d\" 'e'");
}

TEST(HtmlTest, BodylessDocumentStripsEverything) {
  EXPECT_EQ(strip_html("<div>text</div><span>more</span>"), "textmore");
}

}  // namespace
}  // namespace torsim::content
