#include <gtest/gtest.h>

#include "util/ipv4.hpp"
#include "net/service.hpp"

namespace torsim::net {
namespace {

using util::Endpoint;
using util::Ipv4;

// ---------------------------------------------------------------------
// Ipv4
// ---------------------------------------------------------------------

TEST(Ipv4Test, ParseAndPrint) {
  EXPECT_EQ(Ipv4::parse("1.2.3.4").to_string(), "1.2.3.4");
  EXPECT_EQ(Ipv4::parse("255.255.255.255").value(), 0xffffffffu);
  EXPECT_EQ(Ipv4::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4(192, 168, 1, 1).to_string(), "192.168.1.1");
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3.256"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1..3.4"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3.1234"), std::invalid_argument);
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4::parse("1.2.3.4"), Ipv4::parse("1.2.3.5"));
  EXPECT_EQ(Ipv4::parse("9.8.7.6"), Ipv4(9, 8, 7, 6));
}

TEST(Ipv4Test, RandomPublicAvoidsReservedRanges) {
  util::Rng rng(71);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 ip = Ipv4::random_public(rng);
    const auto a = ip.value() >> 24;
    const auto b = ip.value() >> 16 & 0xff;
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, 10u);
    EXPECT_NE(a, 127u);
    EXPECT_LT(a, 224u);
    EXPECT_FALSE(a == 169 && b == 254);
    EXPECT_FALSE(a == 172 && b >= 16 && b < 32);
    EXPECT_FALSE(a == 192 && b == 168);
  }
}

TEST(Ipv4Test, EndpointToString) {
  Endpoint e{Ipv4(1, 2, 3, 4), 443};
  EXPECT_EQ(e.to_string(), "1.2.3.4:443");
}

// ---------------------------------------------------------------------
// TlsCertificate
// ---------------------------------------------------------------------

TEST(TlsCertificateTest, PublicDnsHeuristic) {
  TlsCertificate cert;
  cert.common_name = "mail.example.com";
  EXPECT_TRUE(cert.common_name_is_public_dns());
  cert.common_name = "esjqyk2khizsy43i.onion";
  EXPECT_FALSE(cert.common_name_is_public_dns());
  cert.common_name = "localhost";
  EXPECT_FALSE(cert.common_name_is_public_dns());
}

// ---------------------------------------------------------------------
// ServiceProfile
// ---------------------------------------------------------------------

TEST(ServiceProfileTest, ClosedByDefault) {
  ServiceProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.connect(80), ConnectResult::kClosed);
  EXPECT_EQ(profile.service_at(80), nullptr);
}

TEST(ServiceProfileTest, ListenOpensPort) {
  ServiceProfile profile;
  PortService web;
  web.protocol = Protocol::kHttp;
  profile.listen(80, web);
  EXPECT_EQ(profile.connect(80), ConnectResult::kOpen);
  ASSERT_NE(profile.service_at(80), nullptr);
  EXPECT_EQ(profile.service_at(80)->protocol, Protocol::kHttp);
  EXPECT_EQ(profile.connect(81), ConnectResult::kClosed);
}

TEST(ServiceProfileTest, SkynetAbnormalClose) {
  ServiceProfile profile;
  profile.set_abnormal_close(kPortSkynet);
  EXPECT_EQ(profile.connect(kPortSkynet), ConnectResult::kAbnormalClose);
  // Abnormal ports show up for scanners but carry no service.
  EXPECT_EQ(profile.service_at(kPortSkynet), nullptr);
  EXPECT_EQ(profile.scannable_ports(),
            std::vector<std::uint16_t>{kPortSkynet});
  EXPECT_TRUE(profile.open_ports().empty());
}

TEST(ServiceProfileTest, ListenOverridesAbnormal) {
  ServiceProfile profile;
  profile.set_abnormal_close(55080);
  PortService svc;
  profile.listen(55080, svc);
  EXPECT_EQ(profile.connect(55080), ConnectResult::kOpen);
  profile.set_abnormal_close(55080);
  EXPECT_EQ(profile.connect(55080), ConnectResult::kAbnormalClose);
}

TEST(ServiceProfileTest, ScannablePortsSorted) {
  ServiceProfile profile;
  profile.listen(443, {});
  profile.listen(80, {});
  profile.set_abnormal_close(55080);
  EXPECT_EQ(profile.scannable_ports(),
            (std::vector<std::uint16_t>{80, 443, 55080}));
}

TEST(ServiceProfileTest, ToStringCoverage) {
  EXPECT_STREQ(to_string(ConnectResult::kOpen), "open");
  EXPECT_STREQ(to_string(ConnectResult::kAbnormalClose), "abnormal-close");
  EXPECT_STREQ(to_string(Protocol::kHttps), "https");
  EXPECT_STREQ(to_string(Protocol::kSkynetControl), "skynet-control");
}

}  // namespace
}  // namespace torsim::net

// ---------------------------------------------------------------------
// cell-level circuits
// ---------------------------------------------------------------------
#include "net/cells.hpp"

namespace torsim::net {
namespace {

TEST(CircuitTest, RequiresAtLeastOneHop) {
  EXPECT_THROW(Circuit({}), std::invalid_argument);
}

TEST(CircuitTest, AllHopsObserveSameTrace) {
  Circuit circuit({1, 2, 3});
  circuit.transmit(5);
  circuit.tick();
  circuit.transmit(2);
  for (std::size_t hop = 0; hop < 3; ++hop)
    EXPECT_EQ(circuit.observed_at(hop), (CellTrace{5, 0, 2}));
  EXPECT_THROW(circuit.observed_at(3), std::out_of_range);
}

TEST(CircuitTest, ObservedByNode) {
  Circuit circuit({10, 20, 30});
  circuit.transmit(1);
  EXPECT_NE(circuit.observed_by(20), nullptr);
  EXPECT_EQ(circuit.observed_by(99), nullptr);
  EXPECT_EQ(*circuit.observed_by(10), (CellTrace{1}));
}

TEST(CircuitTest, TransmitPattern) {
  Circuit circuit({1});
  circuit.transmit_pattern({3, 0, 7});
  EXPECT_EQ(circuit.length_ticks(), 3u);
  EXPECT_EQ(circuit.observed_at(0), (CellTrace{3, 0, 7}));
  EXPECT_THROW(circuit.transmit(-1), std::invalid_argument);
}

TEST(CircuitTest, BackgroundCellsShape) {
  util::Rng rng(5);
  const auto trace = background_cells(rng, 500);
  EXPECT_EQ(trace.size(), 500u);
  int zeros = 0;
  for (int c : trace) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 20);
    zeros += c == 0;
  }
  // Bursty-but-mostly-quiet: roughly half the ticks are silent.
  EXPECT_NEAR(static_cast<double>(zeros) / 500.0, 0.55, 0.08);
}

}  // namespace
}  // namespace torsim::net
