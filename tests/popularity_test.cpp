#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "popularity/request_generator.hpp"
#include "popularity/resolver.hpp"

namespace torsim::popularity {
namespace {

using population::Population;
using population::PopulationConfig;

const Population& test_population() {
  static const Population pop = [] {
    PopulationConfig config;
    config.seed = 321;
    config.scale = 0.05;
    return Population::generate(config);
  }();
  return pop;
}

const RequestStream& test_stream() {
  static const RequestStream stream = [] {
    RequestGenerator generator;
    return generator.generate(test_population());
  }();
  return stream;
}

struct ResolvedFixture {
  DescriptorResolver resolver;
  ResolutionReport report;
  ResolvedFixture() {
    resolver.build_dictionary(test_population());
    report = resolver.resolve(test_stream(), test_population());
  }
};

const ResolvedFixture& resolved() {
  static const ResolvedFixture fixture;
  return fixture;
}

// ---------------------------------------------------------------------
// request generator
// ---------------------------------------------------------------------

TEST(RequestGeneratorTest, PhantomShareNear80Percent) {
  const auto& stream = test_stream();
  const double share =
      static_cast<double>(stream.phantom_requests) /
      static_cast<double>(stream.phantom_requests + stream.real_requests);
  EXPECT_NEAR(share, 0.80, 0.03);
}

TEST(RequestGeneratorTest, RequestsSortedByTime) {
  const auto& stream = test_stream();
  for (std::size_t i = 1; i < stream.requests.size(); ++i)
    EXPECT_LE(stream.requests[i - 1].time, stream.requests[i].time);
}

TEST(RequestGeneratorTest, RequestsWithinWindow) {
  const auto& stream = test_stream();
  const util::UnixTime t0 = util::make_utc(2013, 2, 4, 10, 0, 0);
  for (const auto& req : stream.requests) {
    EXPECT_GE(req.time, t0);
    EXPECT_LT(req.time, t0 + 2 * util::kSecondsPerHour);
  }
}

TEST(RequestGeneratorTest, PhantomVolumeDegradesToZero) {
  // A window with no real traffic must produce no phantom traffic
  // either — volume AND fabricated IDs degrade together, otherwise a
  // lone zero-request phantom id would skew the Table II denominators.
  population::Population pop = test_population();
  for (population::ServiceId id = 0; id < pop.size(); ++id)
    pop.set_requests_per_2h(id, 0.0);
  const RequestStream stream = RequestGenerator().generate(pop);
  EXPECT_EQ(stream.real_requests, 0);
  EXPECT_EQ(stream.phantom_requests, 0);
  EXPECT_EQ(stream.real_ids, 0);
  EXPECT_EQ(stream.phantom_ids, 0);
  EXPECT_TRUE(stream.requests.empty());
}

TEST(RequestGeneratorTest, SkewedClockIdsComeFromAdjacentDayPeriods) {
  // ~2% of clients derive with a clock skewed by ±1 day. Every emitted
  // descriptor ID must therefore appear in the multi-day candidate
  // table the resolver builds: the window's periods plus one day on
  // either side, for both replicas of every requested service.
  RequestGeneratorConfig config;
  config.phantom_request_share = 0.0;  // real requests only
  const RequestStream stream = RequestGenerator(config).generate(
      test_population());
  ASSERT_GT(stream.real_requests, 0);
  EXPECT_EQ(stream.phantom_requests, 0);

  const util::UnixTime t0 = util::make_utc(2013, 2, 4, 10, 0, 0);
  std::set<crypto::DescriptorId> candidates;
  for (const auto svc : test_population().services()) {
    if (svc.requests_per_2h() <= 0.0) continue;
    const auto pid =
        crypto::permanent_id_from_fingerprint(svc.key().fingerprint());
    for (int day = -1; day <= 1; ++day) {
      const util::UnixTime base = t0 + day * util::kSecondsPerDay;
      // Periods can roll over mid-window (id-dependent offset), so
      // derive at both window edges.
      for (const util::UnixTime t : {base, base + config.window_length - 1})
        for (const auto& id : crypto::descriptor_ids_for_period(
                 pid, crypto::time_period(t, pid)))
          candidates.insert(id);
    }
  }
  for (const auto& req : stream.requests)
    EXPECT_EQ(candidates.count(req.descriptor_id), 1u);

  // The resolver's default derivation window spans those same days, so
  // every skewed request must still resolve.
  DescriptorResolver resolver;
  resolver.build_dictionary(test_population());
  const auto report = resolver.resolve(stream, test_population());
  EXPECT_EQ(report.resolved_requests, stream.real_requests);
}

TEST(RequestGeneratorTest, HeadServiceGetsHeadVolume) {
  // The rank-1 Goldnet service should see roughly its configured
  // 13,714 requests per 2h.
  const auto& pop = test_population();
  std::optional<population::Population::ServiceRef> goldnet1;
  for (const auto svc : pop.services())
    if (svc.paper_rank() == 1) goldnet1 = svc;
  ASSERT_TRUE(goldnet1.has_value());

  std::map<crypto::DescriptorId, std::int64_t> counts;
  for (const auto& req : test_stream().requests) ++counts[req.descriptor_id];

  const auto pid =
      crypto::permanent_id_from_fingerprint(goldnet1->key().fingerprint());
  const util::UnixTime t0 = util::make_utc(2013, 2, 4, 10, 0, 0);
  std::int64_t total = 0;
  for (int day = -1; day <= 1; ++day) {
    const auto period =
        crypto::time_period(t0 + day * util::kSecondsPerDay, pid);
    for (std::uint8_t replica = 0; replica < 2; ++replica)
      total += counts[crypto::descriptor_id(pid, period, replica)];
  }
  EXPECT_NEAR(static_cast<double>(total), 13714.0, 500.0);
}

TEST(RequestGeneratorTest, DeterministicForSeed) {
  RequestGenerator g1(RequestGeneratorConfig{.seed = 5});
  RequestGenerator g2(RequestGeneratorConfig{.seed = 5});
  const auto a = g1.generate(test_population());
  const auto b = g2.generate(test_population());
  EXPECT_EQ(a.requests.size(), b.requests.size());
  EXPECT_EQ(a.real_requests, b.real_requests);
}

TEST(RequestGeneratorTest, ShorterWindowFewerRequests) {
  RequestGeneratorConfig config;
  config.seed = 6;
  config.window_length = util::kSecondsPerHour / 2;
  const auto small = RequestGenerator(config).generate(test_population());
  EXPECT_LT(small.real_requests, test_stream().real_requests / 2);
}

// ---------------------------------------------------------------------
// resolver
// ---------------------------------------------------------------------

TEST(ResolverTest, DictionaryCoversDerivationWindow) {
  const auto& fixture = resolved();
  // 12 days x 2 replicas per onion, minus duplicates from period
  // offsets: at least 20 ids per onion.
  EXPECT_GE(fixture.resolver.dictionary_size(),
            test_population().size() * 20);
}

TEST(ResolverTest, UnresolvedShareMatchesPaper) {
  const auto& report = resolved().report;
  // ~80% of requests target never-published descriptors.
  EXPECT_NEAR(report.unresolved_request_share(), 0.80, 0.04);
}

TEST(ResolverTest, ResolvedIdsAreMinorityOfUnique) {
  const auto& report = resolved().report;
  // Paper: 6,113 resolved of 29,123 unique ids (~21%).
  const double share = static_cast<double>(report.resolved_descriptor_ids) /
                       static_cast<double>(report.unique_descriptor_ids);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.45);
}

TEST(ResolverTest, RankingHeadMatchesTable2Order) {
  const auto& report = resolved().report;
  ASSERT_GE(report.ranking.size(), 10u);
  // Top-3 must be the Goldnet head, in order.
  EXPECT_EQ(report.ranking[0].paper_rank, 1);
  EXPECT_EQ(report.ranking[1].paper_rank, 2);
  EXPECT_EQ(report.ranking[2].paper_rank, 3);
  EXPECT_EQ(report.ranking[0].label, "Goldnet");
}

TEST(ResolverTest, BotnetsDominateTheHead) {
  const auto& report = resolved().report;
  int botnet_rows = 0;
  for (std::size_t i = 0; i < 10 && i < report.ranking.size(); ++i) {
    const auto& label = report.ranking[i].label;
    if (label == "Goldnet" || label == "Skynet" || label == "BcMine" ||
        label == "Unknown")
      ++botnet_rows;
  }
  EXPECT_GE(botnet_rows, 8);  // Table II: 10 of the top 10
}

TEST(ResolverTest, SilkRoadNearRank18) {
  const auto& report = resolved().report;
  int rank = 0;
  for (std::size_t i = 0; i < report.ranking.size(); ++i)
    if (report.ranking[i].label == "SilkRoad") rank = static_cast<int>(i) + 1;
  ASSERT_GT(rank, 0);
  EXPECT_GE(rank, 12);
  EXPECT_LE(rank, 26);
}

TEST(ResolverTest, RelativeOrderOfNamedServices) {
  const auto& report = resolved().report;
  const auto rank_of = [&](const std::string& label) {
    for (std::size_t i = 0; i < report.ranking.size(); ++i)
      if (report.ranking[i].label == label) return static_cast<int>(i);
    return -1;
  };
  const int silkroad = rank_of("SilkRoad");
  const int freedom = rank_of("FreedomHosting");
  const int bmr = rank_of("BlackMarketReloaded");
  const int ddg = rank_of("DuckDuckGo");
  ASSERT_GE(silkroad, 0);
  ASSERT_GE(freedom, 0);
  ASSERT_GE(bmr, 0);
  ASSERT_GE(ddg, 0);
  // Paper order: SilkRoad (18) < FreedomHosting (27) < BMR (62) < DDG (157).
  EXPECT_LT(silkroad, freedom);
  EXPECT_LT(freedom, bmr);
  EXPECT_LT(bmr, ddg);
}

TEST(ResolverTest, RequestCountsApproximateTable2) {
  const auto& report = resolved().report;
  for (const auto& row : report.ranking) {
    if (row.paper_rank == 1) {
      EXPECT_NEAR(static_cast<double>(row.requests), 13714.0, 700.0);
    }
    if (row.paper_rank == 18) {
      EXPECT_NEAR(static_cast<double>(row.requests), 1175.0, 200.0);
    }
  }
}

TEST(ResolverTest, ResolvedOnionsExistInPopulation) {
  const auto& report = resolved().report;
  const auto& pop = test_population();
  for (const auto& row : report.ranking)
    EXPECT_TRUE(pop.find(row.onion).has_value()) << row.onion;
}

TEST(ResolverTest, EmptyStreamProducesEmptyReport) {
  DescriptorResolver resolver;
  resolver.build_dictionary(test_population());
  RequestStream empty;
  const auto report = resolver.resolve(empty, test_population());
  EXPECT_EQ(report.total_requests, 0);
  EXPECT_EQ(report.resolved_onions, 0);
  EXPECT_TRUE(report.ranking.empty());
  EXPECT_DOUBLE_EQ(report.unresolved_request_share(), 0.0);
}

}  // namespace
}  // namespace torsim::popularity

// ---------------------------------------------------------------------
// botnet-infrastructure inference (the "Goldnet" detective work)
// ---------------------------------------------------------------------
#include "popularity/botnet_inference.hpp"

namespace torsim::popularity {
namespace {

TEST(BotnetInferenceTest, FindsGoldnetFronts) {
  const auto report =
      infer_botnet_infrastructure(resolved().report, test_population());
  // All nine Goldnet/Unknown fronts match the C&C fingerprint.
  EXPECT_EQ(report.cnc_candidates.size(), 9u);
  for (const auto& fp : report.cnc_candidates) {
    EXPECT_TRUE(fp.http_503);
    EXPECT_TRUE(fp.server_status_exposed);
    EXPECT_NEAR(fp.traffic_bytes_per_sec, 330.0 * 1024.0, 10000.0);
    EXPECT_NEAR(fp.requests_per_sec, 10.0, 1.5);
  }
}

TEST(BotnetInferenceTest, GroupsIntoTwoPhysicalServers) {
  const auto report =
      infer_botnet_infrastructure(resolved().report, test_population());
  ASSERT_EQ(report.physical_servers.size(), 2u);
  std::size_t total = 0;
  for (const auto& server : report.physical_servers) {
    EXPECT_GE(server.onions.size(), 4u);
    total += server.onions.size();
    EXPECT_GT(server.apache_uptime_seconds, 0);
  }
  EXPECT_EQ(total, 9u);
  EXPECT_NE(report.physical_servers[0].apache_uptime_seconds,
            report.physical_servers[1].apache_uptime_seconds);
}

TEST(BotnetInferenceTest, OrdinaryPopularServicesNotFlagged) {
  const auto report =
      infer_botnet_infrastructure(resolved().report, test_population());
  for (const auto& fp : report.cnc_candidates) {
    const auto svc = test_population().find(fp.onion);
    ASSERT_TRUE(svc.has_value());
    EXPECT_EQ(svc->klass(), population::ServiceClass::kGoldnetCnC)
        << fp.onion << " labeled " << svc->label();
  }
}

TEST(BotnetInferenceTest, EmptyRankingYieldsEmptyReport) {
  ResolutionReport empty;
  const auto report =
      infer_botnet_infrastructure(empty, test_population());
  EXPECT_TRUE(report.cnc_candidates.empty());
  EXPECT_TRUE(report.physical_servers.empty());
}

}  // namespace
}  // namespace torsim::popularity

// ---------------------------------------------------------------------
// request-rate time series (the "traffic remained constant" observation)
// ---------------------------------------------------------------------
#include "popularity/timeseries.hpp"

namespace torsim::popularity {
namespace {

TEST(TimeSeriesTest, GoldnetRatesAreSteady) {
  const auto report =
      build_time_series(test_stream(), resolved().resolver);
  ASSERT_FALSE(report.series.empty());
  // The highest-volume series is the rank-1 Goldnet front; its per-window
  // rate is machine-steady (Poisson arrivals around a constant mean).
  const auto& head = report.series.front();
  EXPECT_GT(head.mean_rate, 1000.0);
  EXPECT_LT(head.cv, 0.15);
  const auto svc = test_population().find(head.onion);
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->paper_rank(), 1);
}

TEST(TimeSeriesTest, WindowCountsSumToResolvedVolume) {
  const auto report =
      build_time_series(test_stream(), resolved().resolver,
                        TimeSeriesConfig{.windows = 4, .min_requests = 1});
  std::int64_t total = 0;
  for (const auto& series : report.series) {
    EXPECT_EQ(series.per_window.size(), 4u);
    for (const auto c : series.per_window) total += c;
  }
  EXPECT_EQ(total, resolved().report.resolved_requests);
}

TEST(TimeSeriesTest, MinRequestFilterApplies) {
  const auto strict =
      build_time_series(test_stream(), resolved().resolver,
                        TimeSeriesConfig{.windows = 6, .min_requests = 500});
  for (const auto& series : strict.series) {
    std::int64_t total = 0;
    for (const auto c : series.per_window) total += c;
    EXPECT_GE(total, 500);
  }
}

TEST(TimeSeriesTest, OrderingIsTotalAndStableAcrossRuns) {
  // Regression for a latent order dependence: series used to be sorted
  // by mean_rate alone, so equal-rate services appeared in hash order of
  // the bucket map. The sort now tie-breaks on the onion address; the
  // report order must be a total order with no hash-order residue.
  const TimeSeriesConfig config{.windows = 4, .min_requests = 1};
  const auto report =
      build_time_series(test_stream(), resolved().resolver, config);
  ASSERT_GT(report.series.size(), 1u);
  for (std::size_t i = 1; i < report.series.size(); ++i) {
    const auto& prev = report.series[i - 1];
    const auto& cur = report.series[i];
    const bool ordered =
        prev.mean_rate > cur.mean_rate ||
        (prev.mean_rate == cur.mean_rate && prev.onion < cur.onion);
    EXPECT_TRUE(ordered) << "series[" << i - 1 << "]=" << prev.onion
                         << " rate " << prev.mean_rate << " vs series["
                         << i << "]=" << cur.onion << " rate "
                         << cur.mean_rate;
  }
  // And the full ordering replays identically.
  const auto again =
      build_time_series(test_stream(), resolved().resolver, config);
  ASSERT_EQ(again.series.size(), report.series.size());
  for (std::size_t i = 0; i < report.series.size(); ++i)
    EXPECT_EQ(again.series[i].onion, report.series[i].onion);
}

TEST(TimeSeriesTest, EmptyStream) {
  RequestStream empty;
  const auto report = build_time_series(empty, resolved().resolver);
  EXPECT_TRUE(report.series.empty());
}

}  // namespace
}  // namespace torsim::popularity

namespace torsim::popularity {
namespace {

TEST(CategorySharesTest, BotnetsDominateRequestVolume) {
  const auto shares =
      category_shares(resolved().report, test_population());
  EXPECT_GT(shares.total_requests, 0);
  // The paper's conclusion: the most popular services are botnet C&C.
  EXPECT_GT(shares.botnet, 0.60);
  EXPECT_GT(shares.botnet, shares.adult);
  EXPECT_GT(shares.adult, shares.market);
  EXPECT_NEAR(shares.botnet + shares.adult + shares.market + shares.other,
              1.0, 1e-9);
}

}  // namespace
}  // namespace torsim::popularity
