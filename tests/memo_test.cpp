// The deterministic memoization layer (docs/performance.md): the
// MemoTable primitive, the process-wide --cache knob, the descriptor-id
// derivation caches, the consensus generation stamp, and the
// responsible-HSDir ring cache. The load-bearing property throughout:
// a cache hit returns byte-for-byte what the miss path computes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "dirauth/consensus.hpp"
#include "dirauth/ring_cache.hpp"
#include "util/memo.hpp"
#include "util/rng.hpp"

namespace torsim {
namespace {

struct U32Hash {
  std::uint64_t operator()(const std::uint32_t& key) const {
    return util::memo_mix_u64(1469598103934665603ULL, key);
  }
};

TEST(MemoTableTest, StoreFindClear) {
  util::MemoTable<std::uint32_t, std::string, U32Hash> table(8);
  EXPECT_EQ(table.capacity(), 8u);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_FALSE(table.store(1, "one"));
  ASSERT_NE(table.find(1), nullptr);
  EXPECT_EQ(*table.find(1), "one");
  // Refreshing the same key is not an eviction.
  EXPECT_FALSE(table.store(1, "uno"));
  EXPECT_EQ(*table.find(1), "uno");
  table.clear();
  EXPECT_EQ(table.find(1), nullptr);
}

TEST(MemoTableTest, CapacityRoundsUpToPowerOfTwo) {
  util::MemoTable<std::uint32_t, int, U32Hash> table(100);
  EXPECT_EQ(table.capacity(), 128u);
  util::MemoTable<std::uint32_t, int, U32Hash> tiny(0);
  EXPECT_EQ(tiny.capacity(), 1u);
}

TEST(MemoTableTest, CollidingKeyEvictsSlot) {
  // Capacity 1: every key maps to the same slot, so a second distinct
  // key must report an eviction and replace the first.
  util::MemoTable<std::uint32_t, int, U32Hash> table(1);
  EXPECT_FALSE(table.store(1, 10));
  EXPECT_TRUE(table.store(2, 20));
  EXPECT_EQ(table.find(1), nullptr);
  ASSERT_NE(table.find(2), nullptr);
  EXPECT_EQ(*table.find(2), 20);
}

TEST(MemoKnobTest, GuardSetsAndRestores) {
  const bool before = util::memo_enabled();
  {
    const util::MemoEnabledGuard guard(!before);
    EXPECT_EQ(util::memo_enabled(), !before);
  }
  EXPECT_EQ(util::memo_enabled(), before);
}

TEST(MemoKnobTest, EpochBumpIsMonotone) {
  const std::uint64_t before = util::memo_epoch();
  util::bump_memo_epoch();
  EXPECT_GT(util::memo_epoch(), before);
}

// ---------------------------------------------------------------------
// Derivation caches
// ---------------------------------------------------------------------

crypto::PermanentId random_pid(util::Rng& rng) {
  crypto::PermanentId pid;
  rng.fill_bytes(pid.data(), pid.size());
  return pid;
}

TEST(DerivationCacheTest, CachedEqualsUncachedForRandomInputs) {
  util::Rng rng(501);
  for (int i = 0; i < 200; ++i) {
    const auto pid = random_pid(rng);
    const auto period =
        static_cast<std::uint32_t>(rng.uniform_int(15000, 16000));
    const auto replica = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    crypto::DescriptorId cached, uncached;
    {
      const util::MemoEnabledGuard guard(true);
      cached = crypto::descriptor_id(pid, period, replica);
      // Hit the warm path too — must match the cold result exactly.
      EXPECT_EQ(crypto::descriptor_id(pid, period, replica), cached);
    }
    {
      const util::MemoEnabledGuard guard(false);
      uncached = crypto::descriptor_id(pid, period, replica);
    }
    EXPECT_EQ(cached, uncached) << i;
  }
}

TEST(DerivationCacheTest, SecretIdPartCachedEqualsUncached) {
  for (std::uint32_t period : {0u, 15740u, 0xffffffffu}) {
    for (std::uint8_t replica : {std::uint8_t{0}, std::uint8_t{1}}) {
      crypto::Sha1Digest cached, uncached;
      {
        const util::MemoEnabledGuard guard(true);
        cached = crypto::secret_id_part(period, replica);
        EXPECT_EQ(crypto::secret_id_part(period, replica), cached);
      }
      {
        const util::MemoEnabledGuard guard(false);
        uncached = crypto::secret_id_part(period, replica);
      }
      EXPECT_EQ(cached, uncached);
    }
  }
}

TEST(DerivationCacheTest, MidstatePathMatchesPerReplicaDerivation) {
  util::Rng rng(502);
  const std::vector<std::uint8_t> cookie = {0xde, 0xad, 0xbe, 0xef};
  for (int i = 0; i < 50; ++i) {
    const auto pid = random_pid(rng);
    const auto period =
        static_cast<std::uint32_t>(rng.uniform_int(15000, 16000));
    for (const bool cache_on : {false, true}) {
      const util::MemoEnabledGuard guard(cache_on);
      // Public service: cacheable path.
      const auto ids = crypto::descriptor_ids_for_period(pid, period);
      for (std::uint8_t replica = 0; replica < crypto::kNumReplicas;
           ++replica)
        EXPECT_EQ(ids[replica], crypto::descriptor_id(pid, period, replica));
      // Authenticated service: cookie forces the direct midstate path.
      const auto auth_ids =
          crypto::descriptor_ids_for_period(pid, period, cookie);
      for (std::uint8_t replica = 0; replica < crypto::kNumReplicas;
           ++replica)
        EXPECT_EQ(auth_ids[replica],
                  crypto::descriptor_id(pid, period, replica, cookie));
    }
  }
}

TEST(DerivationCacheTest, CountsHitsAndMisses) {
  const util::MemoEnabledGuard guard(true);  // also bumps the epoch
  crypto::reset_derivation_cache_stats();
  util::Rng rng(503);
  const auto pid = random_pid(rng);
  crypto::descriptor_id(pid, 15740, 0);
  const auto cold = crypto::derivation_cache_stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 1u);
  crypto::descriptor_id(pid, 15740, 0);
  const auto warm = crypto::derivation_cache_stats();
  EXPECT_EQ(warm.hits, 1u);
  EXPECT_EQ(warm.misses, 1u);
  // The second replica shares the secret-part period prefix: its
  // secret lookup misses once, then hits on repeat.
  const auto secret_before = crypto::secret_cache_stats();
  crypto::descriptor_id(pid, 15740, 1);
  crypto::descriptor_id(pid, 15740, 1);
  const auto secret_after = crypto::secret_cache_stats();
  EXPECT_EQ(secret_after.misses - secret_before.misses, 1u);
}

TEST(DerivationCacheTest, EpochBumpInvalidatesShards) {
  const util::MemoEnabledGuard guard(true);
  util::Rng rng(504);
  const auto pid = random_pid(rng);
  crypto::descriptor_id(pid, 15740, 0);
  crypto::reset_derivation_cache_stats();
  util::bump_memo_epoch();
  crypto::descriptor_id(pid, 15740, 0);
  const auto stats = crypto::derivation_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(DerivationCacheTest, CookieDerivationsBypassTheCache) {
  const util::MemoEnabledGuard guard(true);
  crypto::reset_derivation_cache_stats();
  util::Rng rng(505);
  const auto pid = random_pid(rng);
  const std::vector<std::uint8_t> cookie = {1, 2, 3};
  crypto::descriptor_id(pid, 15740, 0, cookie);
  crypto::descriptor_id(pid, 15740, 0, cookie);
  const auto stats = crypto::derivation_cache_stats();
  EXPECT_EQ(stats.lookups(), 0u);
}

// ---------------------------------------------------------------------
// Consensus generation stamps
// ---------------------------------------------------------------------

dirauth::Consensus make_consensus(util::Rng& rng, int n) {
  std::vector<dirauth::ConsensusEntry> entries;
  for (int i = 0; i < n; ++i) {
    dirauth::ConsensusEntry e;
    e.relay = static_cast<relay::RelayId>(i + 1);
    rng.fill_bytes(e.fingerprint.data(), e.fingerprint.size());
    e.flags = dirauth::with_flag(0, dirauth::Flag::kHSDir);
    entries.push_back(e);
  }
  return {1359676800, std::move(entries)};
}

TEST(ConsensusGenerationTest, DistinctConsensusesGetDistinctStamps) {
  util::Rng rng(506);
  const auto a = make_consensus(rng, 8);
  const auto b = make_consensus(rng, 8);
  EXPECT_NE(a.generation(), 0u);
  EXPECT_NE(b.generation(), 0u);
  EXPECT_NE(a.generation(), b.generation());
  EXPECT_EQ(dirauth::Consensus().generation(), 0u);
}

TEST(ConsensusGenerationTest, CopyRestampsMovePreserves) {
  util::Rng rng(507);
  auto original = make_consensus(rng, 8);
  const std::uint64_t stamp = original.generation();

  // A copy owns a different entries buffer: cached pointers into the
  // original must not be served for it, so it re-stamps.
  const dirauth::Consensus copy(original);
  EXPECT_NE(copy.generation(), stamp);
  EXPECT_NE(copy.generation(), 0u);

  // A move carries the buffer, so cached pointers stay valid: the stamp
  // moves with it and the source decays to the empty consensus.
  const dirauth::Consensus moved(std::move(original));
  EXPECT_EQ(moved.generation(), stamp);
  EXPECT_EQ(original.generation(), 0u);
  EXPECT_EQ(original.size(), 0u);
}

// ---------------------------------------------------------------------
// Responsible-set ring cache
// ---------------------------------------------------------------------

TEST(RingCacheTest, MatchesUncachedRingWalk) {
  util::Rng rng(508);
  const auto consensus = make_consensus(rng, 40);
  std::vector<crypto::DescriptorId> ids(64);
  for (auto& id : ids) rng.fill_bytes(id.data(), id.size());

  for (const bool cache_on : {false, true}) {
    const util::MemoEnabledGuard guard(cache_on);
    dirauth::ResponsibleSetCache cache;
    for (const auto& id : ids) {
      const auto expected = consensus.responsible_hsdirs(id);
      // Twice: cold then warm, both must match the direct walk.
      for (int round = 0; round < 2; ++round) {
        const auto& set = cache.responsible(consensus, id);
        ASSERT_EQ(set.count, expected.size());
        for (std::size_t k = 0; k < expected.size(); ++k)
          EXPECT_EQ(set.dirs[k], expected[k]);
      }
    }
  }
}

TEST(RingCacheTest, BatchMatchesUncachedBatch) {
  util::Rng rng(509);
  const auto consensus = make_consensus(rng, 40);
  std::vector<crypto::DescriptorId> ids(64);
  for (auto& id : ids) rng.fill_bytes(id.data(), id.size());
  // Duplicates exercise the same-batch double-miss path.
  ids.insert(ids.end(), ids.begin(), ids.begin() + 16);

  const util::MemoEnabledGuard guard(true);
  dirauth::ResponsibleSetCache cache;
  const auto expected = consensus.responsible_hsdirs_batch(ids, 1);
  // Cold batch (all misses), then warm batch (all hits).
  EXPECT_EQ(cache.batch(consensus, ids, 4), expected);
  EXPECT_EQ(cache.batch(consensus, ids, 4), expected);
}

TEST(RingCacheTest, NewConsensusGenerationInvalidates) {
  util::Rng rng(510);
  const auto first = make_consensus(rng, 40);
  const auto second = make_consensus(rng, 40);
  crypto::DescriptorId id;
  rng.fill_bytes(id.data(), id.size());

  const util::MemoEnabledGuard guard(true);
  dirauth::ResponsibleSetCache cache;
  cache.responsible(first, id);  // fill under `first`
  // Same id under a different consensus must answer from *that*
  // consensus, not from the stale fill.
  const auto expected = second.responsible_hsdirs(id);
  const auto& set = cache.responsible(second, id);
  ASSERT_EQ(set.count, expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k)
    EXPECT_EQ(set.dirs[k], expected[k]);
}

TEST(RingCacheTest, DisabledCacheRecordsNoStats) {
  util::Rng rng(511);
  const auto consensus = make_consensus(rng, 16);
  crypto::DescriptorId id;
  rng.fill_bytes(id.data(), id.size());

  const util::MemoEnabledGuard guard(false);
  dirauth::ResponsibleSetCache cache;
  dirauth::ResponsibleSetCache::reset_stats();
  cache.responsible(consensus, id);
  cache.responsible(consensus, id);
  const auto stats = dirauth::ResponsibleSetCache::stats();
  EXPECT_EQ(stats.lookups(), 0u);
}

}  // namespace
}  // namespace torsim
