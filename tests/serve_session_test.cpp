// WorldSession tests: query payload shapes, the batch-equals-serial
// determinism contract at several thread counts, mutating requests as
// batch barriers, and byte-stable session metrics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/loadgen.hpp"
#include "serve/proto.hpp"
#include "serve/session.hpp"
#include "util/strings.hpp"

namespace {

using namespace torsim;
using serve::QueryKind;
using serve::Request;
using serve::Response;
using serve::SessionConfig;
using serve::Status;
using serve::WorldSession;

SessionConfig toy_config(int threads = 1,
                         obs::MetricsRegistry* metrics = nullptr) {
  SessionConfig config;
  config.world.seed = 20130204;
  config.world.honest_relays = 60;
  config.services = 6;
  config.warmup_hours = 2;
  config.threads = threads;
  config.metrics = metrics;
  return config;
}

Request make(QueryKind kind, std::uint64_t id) {
  Request request;
  request.id = id;
  request.kind = kind;
  return request;
}

std::string render_all(const std::vector<Response>& responses) {
  std::string out;
  for (const Response& response : responses)
    out += serve::render_response(response);
  return out;
}

/// A mixed workload over every read-only kind plus a mutating step in
/// the middle (a barrier the batcher must respect).
std::vector<Request> mixed_batch() {
  std::vector<Request> batch;
  batch.push_back(make(QueryKind::kStats, 1));
  Request harvest = make(QueryKind::kHarvest, 2);
  harvest.first = 0;
  harvest.count = 6;
  batch.push_back(harvest);
  Request resolve = make(QueryKind::kResolve, 3);
  resolve.first = 2;
  resolve.count = 3;
  batch.push_back(resolve);
  Request scan = make(QueryKind::kScan, 4);
  scan.first = 0;
  scan.count = 6;
  scan.seed = 99;
  batch.push_back(scan);
  Request popularity = make(QueryKind::kPopularity, 5);
  popularity.requests = 120;
  popularity.top = 4;
  popularity.seed = 7;
  batch.push_back(popularity);
  Request step = make(QueryKind::kScenarioStep, 6);
  step.hours = 2;
  batch.push_back(step);
  // After the barrier the same queries must see the stepped world.
  Request stats2 = make(QueryKind::kStats, 7);
  batch.push_back(stats2);
  Request scan2 = scan;
  scan2.id = 8;
  batch.push_back(scan2);
  return batch;
}

TEST(ServeSession, StatsHasTheDocumentedShape) {
  WorldSession session(toy_config());
  const Response response = session.execute(make(QueryKind::kStats, 9));
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.data.size(), 1u);
  const std::vector<std::string> words =
      util::split(response.data.front(), ' ');
  ASSERT_EQ(words.size(), 12u) << response.data.front();
  EXPECT_EQ(words[0], "hour");
  EXPECT_EQ(words[1], "2");  // warmup_hours
  EXPECT_EQ(words[2], "relays_online");
  EXPECT_EQ(words[4], "hsdirs");
  EXPECT_EQ(words[6], "services_online");
  EXPECT_EQ(words[8], "descriptors_stored");
  EXPECT_EQ(words[10], "consensus_valid_after");
}

TEST(ServeSession, HarvestReturnsOneLinePerService) {
  WorldSession session(toy_config());
  Request request = make(QueryKind::kHarvest, 1);
  request.first = 1;
  request.count = 4;
  const Response response = session.execute(request);
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.data.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<std::string> words =
        util::split(response.data[i], ' ');
    ASSERT_EQ(words.size(), 12u) << response.data[i];
    EXPECT_EQ(words[0], "service");
    EXPECT_EQ(words[1], std::to_string(i + 1));
    EXPECT_EQ(words[2], "onion");
    EXPECT_EQ(words[3].size(), 16u);  // onion addresses are 16 base32 chars
    // Descriptor ids are 40 hex chars (SHA-1).
    EXPECT_EQ(words[9].size(), 40u);
    EXPECT_EQ(words[11].size(), 40u);
  }
}

TEST(ServeSession, RangeErrorsAreExactAndStable) {
  WorldSession session(toy_config());
  Request request = make(QueryKind::kHarvest, 1);
  request.first = 4;
  request.count = 5;
  const Response response = session.execute(request);
  ASSERT_EQ(response.status, Status::kError);
  EXPECT_EQ(response.error, "service range [4, 9) out of range (have 6)");
}

TEST(ServeSession, InvalidParametersAreRejectedNotExecuted) {
  WorldSession session(toy_config());
  Request request = make(QueryKind::kScan, 1);
  request.count = 0;
  const Response response = session.execute(request);
  ASSERT_EQ(response.status, Status::kError);
  EXPECT_EQ(response.error, "count must be >= 1");

  Request popularity = make(QueryKind::kPopularity, 2);
  popularity.requests = 10;
  popularity.top = 0;
  EXPECT_EQ(session.execute(popularity).error, "top must be >= 1");
}

TEST(ServeSession, ScanIsAPureFunctionOfItsSeed) {
  WorldSession session(toy_config());
  Request request = make(QueryKind::kScan, 1);
  request.first = 0;
  request.count = 6;
  request.seed = 42;
  const Response first = session.execute(request);
  const Response again = session.execute(request);
  EXPECT_EQ(first, again);
  Request other = request;
  other.seed = 43;
  EXPECT_NE(session.execute(other).data, first.data);
}

TEST(ServeSession, PopularityRanksAreSortedAndComplete) {
  WorldSession session(toy_config());
  Request request = make(QueryKind::kPopularity, 1);
  request.requests = 300;
  request.top = 6;
  request.seed = 5;
  const Response response = session.execute(request);
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.data.size(), 6u);
  std::uint64_t previous = ~0ULL;
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < response.data.size(); ++r) {
    const std::vector<std::string> words =
        util::split(response.data[r], ' ');
    ASSERT_EQ(words.size(), 6u) << response.data[r];
    EXPECT_EQ(words[0], "rank");
    EXPECT_EQ(words[1], std::to_string(r + 1));
    const std::uint64_t count = std::stoull(words[5]);
    EXPECT_LE(count, previous);  // non-increasing tallies
    previous = count;
    total += count;
  }
  EXPECT_EQ(total, 300u);  // every draw lands on some service
}

TEST(ServeSession, ShutdownAcknowledgesAndLatches) {
  WorldSession session(toy_config());
  EXPECT_FALSE(session.shutdown_requested());
  const Response response = session.execute(make(QueryKind::kShutdown, 1));
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.data, std::vector<std::string>{"bye"});
  EXPECT_TRUE(session.shutdown_requested());
}

TEST(ServeSession, ScenarioStepAdvancesTheWorldAsABarrier) {
  WorldSession batch_session(toy_config(4));
  const std::vector<Request> batch = mixed_batch();
  const std::vector<Response> responses =
      batch_session.execute_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  // Request 1 (stats, pre-step) reports hour 2; request 6's probe and
  // request 7 report hour 4 — the step really happened between them.
  EXPECT_EQ(util::split(responses[0].data.front(), ' ')[1], "2");
  EXPECT_EQ(util::split(responses[5].data.front(), ' ')[1], "4");
  EXPECT_EQ(util::split(responses[6].data.front(), ' ')[1], "4");
}

TEST(ServeSession, BatchEqualsSerialAcrossThreadCounts) {
  const std::vector<Request> batch = mixed_batch();

  // The serial reference: a fresh session executing one at a time.
  WorldSession reference(toy_config(1));
  std::vector<Response> serial;
  for (const Request& request : batch)
    serial.push_back(reference.execute(request));
  const std::string expected = render_all(serial);

  for (const int threads : {1, 4, 8}) {
    WorldSession session(toy_config(threads));
    const std::vector<Response> batched = session.execute_batch(batch);
    EXPECT_EQ(render_all(batched), expected) << "threads=" << threads;
  }
}

TEST(ServeSession, DefaultMixMatchesAcrossThreadCounts) {
  const std::vector<Request> mix =
      serve::default_request_mix(20130204, 40, 6, 4);
  std::string expected;
  for (const int threads : {1, 4, 8}) {
    WorldSession session(toy_config(threads));
    const std::string got = render_all(session.execute_batch(mix));
    if (expected.empty()) expected = got;
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ServeSession, SessionMetricsAreByteStableAcrossBatchShapes) {
  const std::vector<Request> batch = mixed_batch();

  obs::MetricsRegistry serial_metrics;
  WorldSession serial_session(toy_config(1, &serial_metrics));
  for (const Request& request : batch) serial_session.execute(request);

  obs::MetricsRegistry batch_metrics;
  WorldSession batch_session(toy_config(8, &batch_metrics));
  batch_session.execute_batch(batch);

  EXPECT_EQ(serial_metrics.to_text(), batch_metrics.to_text());
  // And the counters actually counted.
  EXPECT_NE(serial_metrics.to_text().find("serve.requests_total"),
            std::string::npos);
}

TEST(ServeSession, ErrorsInsideAParallelRunStayPerRequest) {
  WorldSession session(toy_config(4));
  std::vector<Request> batch;
  Request good = make(QueryKind::kHarvest, 1);
  good.first = 0;
  good.count = 2;
  batch.push_back(good);
  Request bad = make(QueryKind::kHarvest, 2);
  bad.first = 100;
  bad.count = 1;
  batch.push_back(bad);
  Request also_good = make(QueryKind::kStats, 3);
  batch.push_back(also_good);
  const std::vector<Response> responses = session.execute_batch(batch);
  EXPECT_EQ(responses[0].status, Status::kOk);
  EXPECT_EQ(responses[1].status, Status::kError);
  EXPECT_EQ(responses[1].error,
            "service range [100, 101) out of range (have 6)");
  EXPECT_EQ(responses[2].status, Status::kOk);
}

}  // namespace
