// The observability subsystem's own contract tests: JSON writer
// canonical form, metric semantics, shard-merge determinism, sim-time
// trace export, and the BENCH_*.json report writer (including the
// "paper == 0 prints n/a" rule). The cross-thread byte-identity of the
// full pipelines is covered end to end in serial_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace torsim::obs {
namespace {

// --- JsonWriter -------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNestsCanonically) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value(std::string("a\"b\\c\n\t"));
  json.key("list").begin_array();
  json.value(std::int64_t{1});
  json.value(true);
  json.null();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"text\": \"a\\\"b\\\\c\\n\\t\",\n"
            "  \"list\": [\n"
            "    1,\n"
            "    true,\n"
            "    null\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, IntegralDoublesKeepDecimalPoint) {
  JsonWriter json;
  json.begin_object();
  json.key("whole").value(3.0);
  json.key("frac").value(0.25);
  json.end_object();
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"whole\": 3.0"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"frac\": 0.25"), std::string::npos) << doc;
}

// --- metric semantics -------------------------------------------------

TEST(HistogramTest, BucketEdgesAreUpperInclusive) {
  Histogram h({0, 10, 20});
  EXPECT_EQ(h.bucket_index(-5), 0u);  // <= 0
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(1), 1u);   // <= 10
  EXPECT_EQ(h.bucket_index(10), 1u);
  EXPECT_EQ(h.bucket_index(20), 2u);
  EXPECT_EQ(h.bucket_index(21), 3u);  // overflow
}

TEST(HistogramTest, ObserveAccumulatesCountSumAndBuckets) {
  Histogram h({0, 10});
  for (std::int64_t v : {-1, 0, 5, 10, 11, 100}) h.observe(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 125);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{2, 2, 2}));
}

TEST(HistogramTest, RejectsNonIncreasingEdges) {
  EXPECT_THROW(Histogram({1, 1}), std::logic_error);
  EXPECT_THROW(Histogram({2, 1}), std::logic_error);
  EXPECT_THROW(Histogram({}), std::logic_error);
}

TEST(HistogramTest, BucketIndexMatchesLinearScanProperty) {
  // Property check against the obvious reference implementation, over
  // seeded random edge sets and values (including the exact edges).
  util::Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::int64_t> edges;
    std::int64_t edge = rng.uniform_int(-100, 100);
    const int num_edges = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < num_edges; ++i) {
      edges.push_back(edge);
      edge += rng.uniform_int(1, 50);
    }
    Histogram h(edges);
    for (int probe = 0; probe < 40; ++probe) {
      const bool exact = rng.bernoulli(0.5);
      const std::int64_t value =
          exact ? edges[static_cast<std::size_t>(rng.uniform_int(
                      0, static_cast<std::int64_t>(edges.size()) - 1))]
                : rng.uniform_int(-300, 300);
      std::size_t expected = edges.size();
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (value <= edges[i]) {
          expected = i;
          break;
        }
      }
      EXPECT_EQ(h.bucket_index(value), expected)
          << "value " << value << " round " << round;
    }
  }
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& c = registry.counter("a.hits");
  c.inc();
  registry.counter("a.hits").inc(2);
  EXPECT_EQ(&registry.counter("a.hits"), &c);
  EXPECT_EQ(c.value(), 3);
  registry.gauge("a.depth").set(7);
  EXPECT_EQ(registry.gauge("a.depth").value(), 7);
}

TEST(MetricsRegistryTest, HistogramEdgeMismatchThrows) {
  MetricsRegistry registry;
  registry.histogram("h", {1, 2});
  EXPECT_NO_THROW(registry.histogram("h", {1, 2}));
  EXPECT_THROW(registry.histogram("h", {1, 3}), std::logic_error);
}

TEST(MetricsRegistryTest, TextEmissionIsNameSorted) {
  // Counters sort by name, then gauges, then histograms — fixed kind
  // order, name order within each kind.
  MetricsRegistry registry;
  registry.counter("z.last").inc(9);
  registry.counter("a.first").inc(1);
  registry.gauge("m.middle").set(-2);
  EXPECT_EQ(registry.to_text(),
            "counter a.first 1\n"
            "counter z.last 9\n"
            "gauge m.middle -2\n");
}

TEST(MetricsRegistryTest, RegistrationOrderDoesNotChangeBytes) {
  MetricsRegistry forwards;
  forwards.counter("a").inc(1);
  forwards.counter("b").inc(2);
  forwards.histogram("h", {10}).observe(3);
  MetricsRegistry backwards;
  backwards.histogram("h", {10}).observe(3);
  backwards.counter("b").inc(2);
  backwards.counter("a").inc(1);
  EXPECT_EQ(forwards.to_text(), backwards.to_text());
  EXPECT_EQ(forwards.to_json(), backwards.to_json());
}

// --- shard merge ------------------------------------------------------

TEST(MetricsRegistryTest, ShardMergeMatchesSingleRegistryByteForByte) {
  // The sharded pattern: each worker owns a registry, shards merge in
  // index order. The merged bytes must equal a serial registry that saw
  // every increment — for any shard assignment.
  const auto record = [](MetricsRegistry& m, std::int64_t task) {
    m.counter("work.items").inc();
    m.counter("work.units").inc(task);
    m.gauge("work.last").set(task);
    m.histogram("work.size", {2, 5, 9}).observe(task % 12);
  };

  MetricsRegistry serial;
  for (std::int64_t task = 0; task < 64; ++task) record(serial, task);

  for (int shards : {1, 4, 8}) {
    std::vector<std::unique_ptr<MetricsRegistry>> parts;
    for (int s = 0; s < shards; ++s)
      parts.push_back(std::make_unique<MetricsRegistry>());
    for (std::int64_t task = 0; task < 64; ++task)
      record(*parts[static_cast<std::size_t>(task) %
                    static_cast<std::size_t>(shards)],
             task);
    MetricsRegistry merged;
    for (auto& part : parts) merged.merge(*part);
    // Gauges are last-writer-wins per shard; re-assert the serial value
    // (shard order decides otherwise, which is exactly why gauges are
    // serial-section-only).
    merged.gauge("work.last").set(63);
    EXPECT_EQ(merged.to_text(), serial.to_text()) << shards << " shards";
    EXPECT_EQ(merged.to_json(), serial.to_json()) << shards << " shards";
  }
}

TEST(MetricsRegistryTest, MergeRejectsEdgeMismatch) {
  MetricsRegistry a;
  a.histogram("h", {1});
  MetricsRegistry b;
  b.histogram("h", {2});
  EXPECT_THROW(a.merge(b), std::logic_error);
}

// --- concurrent increments (exercised under TSAN in CI) ---------------

TEST(ObsMetricsParallelTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  // Register outside the parallel region (registration locks; the hot
  // increments below are lock-free).
  Counter& items = registry.counter("par.items");
  Histogram& sizes = registry.histogram("par.sizes", {100, 500});
  constexpr std::size_t kTasks = 10000;
  util::parallel_for(kTasks, 4, [&](std::size_t i) {
    items.inc();
    sizes.observe(static_cast<std::int64_t>(i % 1000));
  });
  EXPECT_EQ(items.value(), static_cast<std::int64_t>(kTasks));
  EXPECT_EQ(sizes.count(), static_cast<std::int64_t>(kTasks));
  // 0..999 repeated 10x: 101 values <= 100, then 400 more <= 500.
  EXPECT_EQ(sizes.bucket_counts(),
            (std::vector<std::int64_t>{1010, 4000, 4990}));
}

TEST(ObsMetricsParallelTest, RegistryLookupIsThreadSafe) {
  MetricsRegistry registry;
  util::parallel_for(2048, 4, [&](std::size_t i) {
    registry.counter(i % 2 == 0 ? "par.even" : "par.odd").inc();
  });
  EXPECT_EQ(registry.counter("par.even").value(), 1024);
  EXPECT_EQ(registry.counter("par.odd").value(), 1024);
}

// --- tracing ----------------------------------------------------------

TEST(TraceRecorderTest, ChromeJsonIsRebasedAndStableSorted) {
  TraceRecorder trace;
  trace.complete("late", "sim", 2000, 50);
  trace.complete("early", "sim", 1000, 100, {{"k", 7}});
  trace.instant("mark", "sim", 1000);
  const std::string doc = trace.chrome_json();
  // Events sort by start time (record order breaking ties): early,
  // mark, late — with ts rebased so the first event is 0.
  const auto early = doc.find("\"early\"");
  const auto mark = doc.find("\"mark\"");
  const auto late = doc.find("\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(mark, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, mark);
  EXPECT_LT(mark, late);
  EXPECT_NE(doc.find("\"ts\": 0"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ts\": 1000"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"dur\": 100"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"k\": 7"), std::string::npos) << doc;
}

TEST(TraceRecorderTest, SpanGuardRecordsScopeAgainstSimClock) {
  TraceRecorder trace;
  util::Clock clock(5000);
  {
    SpanGuard span(&trace, clock, "phase");
    clock.advance(250);
    span.arg("steps", 1);
  }
  EXPECT_EQ(trace.size(), 1u);
  const std::string doc = trace.chrome_json();
  EXPECT_NE(doc.find("\"dur\": 250"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"steps\": 1"), std::string::npos) << doc;
}

TEST(TraceRecorderTest, NullRecorderDisablesSpans) {
  util::Clock clock(0);
  TRACE_SPAN(nullptr, clock, "noop");
  clock.advance(10);
  // Nothing to assert beyond "does not crash": the macro compiles and
  // a null recorder records nothing.
  SUCCEED();
}

// --- stopwatch (wall clock, non-golden) -------------------------------

TEST(StopwatchTest, PhaseTimerAccumulatesNamedPhases) {
  PhaseTimer timer;
  { const auto scope = timer.scope("a"); }
  { const auto scope = timer.scope("a"); }
  { const auto scope = timer.scope("b"); }
  const auto phases = timer.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_GE(phases.at("a"), 0.0);
  EXPECT_GE(phases.at("b"), 0.0);
  EXPECT_GE(timer.total_seconds(), 0.0);
}

TEST(StopwatchTest, PeakRssIsPositive) {
  EXPECT_GT(peak_rss_bytes(), 0);
}

// --- bench report -----------------------------------------------------

TEST(BenchReportTest, ZeroPaperValuePrintsNaAndExportsNullRatio) {
  BenchReport report("unit");
  testing::internal::CaptureStdout();
  report.print_header("section");
  report.print_row("with baseline", 10, 20);
  report.print_row("no baseline", 10, 0);
  const std::string console = testing::internal::GetCapturedStdout();
  EXPECT_NE(console.find("x0.50"), std::string::npos) << console;
  EXPECT_NE(console.find("n/a"), std::string::npos) << console;
  EXPECT_EQ(console.find("x0.00"), std::string::npos) << console;
  const std::string doc = report.to_json();
  EXPECT_NE(doc.find("\"ratio\": 0.5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ratio\": null"), std::string::npos) << doc;
}

TEST(BenchReportTest, JsonCarriesEverySection) {
  BenchReport report("unit");
  report.set_scale(0.25);
  report.metrics().counter("c").inc(3);
  report.add_benchmark("BM_Thing", 0.5, 0.4, 8);
  { const auto scope = report.phases().scope("build"); }
  const std::string doc = report.to_json();
  for (const char* needle :
       {"\"schema\": \"torsim-bench-v1\"", "\"name\": \"unit\"",
        "\"scale\": 0.25", "\"rows\"", "\"benchmarks\"", "\"BM_Thing\"",
        "\"wall_clock\"", "\"build\"", "\"peak_rss_bytes\"",
        "\"counters\"", "\"gauges\"", "\"histograms\""})
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace torsim::obs
