#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/encoding.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace torsim::util {
namespace {

// ---------------------------------------------------------------------
// time
// ---------------------------------------------------------------------

TEST(TimeTest, EpochIsZero) { EXPECT_EQ(make_utc(1970, 1, 1), 0); }

TEST(TimeTest, KnownTimestamps) {
  EXPECT_EQ(make_utc(2013, 2, 4), 1359936000);
  EXPECT_EQ(make_utc(2013, 2, 4, 12, 30, 45), 1359936000 + 12 * 3600 + 30 * 60 + 45);
  EXPECT_EQ(make_utc(2011, 2, 1), 1296518400);
  EXPECT_EQ(make_utc(2000, 3, 1), 951868800);  // post-leap-day 2000
}

TEST(TimeTest, LeapYearHandling) {
  EXPECT_EQ(make_utc(2012, 2, 29) + kSecondsPerDay, make_utc(2012, 3, 1));
  EXPECT_THROW(make_utc(2013, 2, 29), std::out_of_range);
  EXPECT_NO_THROW(make_utc(2000, 2, 29));   // divisible by 400
  EXPECT_THROW(make_utc(1900, 2, 29), std::out_of_range);  // fake leap year
}

TEST(TimeTest, RejectsOutOfRangeFields) {
  EXPECT_THROW(make_utc(2013, 13, 1), std::out_of_range);
  EXPECT_THROW(make_utc(2013, 0, 1), std::out_of_range);
  EXPECT_THROW(make_utc(2013, 1, 32), std::out_of_range);
  EXPECT_THROW(make_utc(2013, 1, 1, 24, 0, 0), std::out_of_range);
  EXPECT_THROW(make_utc(2013, 1, 1, 0, 60, 0), std::out_of_range);
  EXPECT_THROW(make_utc(1969, 1, 1), std::out_of_range);
}

TEST(TimeTest, CivilRoundTrip) {
  for (UnixTime t : {0L, 1359936000L, 951868800L, 4102444799L}) {
    const CivilTime c = civil_from_unix(t);
    EXPECT_EQ(make_utc(c.year, c.month, c.day, c.hour, c.minute, c.second), t);
  }
}

TEST(TimeTest, CivilRoundTripSweep) {
  // Every 41 days + prime-ish second offset across 30 years.
  for (UnixTime t = 0; t < 30L * 365 * kSecondsPerDay;
       t += 41 * kSecondsPerDay + 12345) {
    const CivilTime c = civil_from_unix(t);
    ASSERT_EQ(make_utc(c.year, c.month, c.day, c.hour, c.minute, c.second), t);
  }
}

TEST(TimeTest, Format) {
  EXPECT_EQ(format_utc(make_utc(2013, 2, 4, 9, 5, 3)), "2013-02-04 09:05:03");
  EXPECT_EQ(format_utc(0), "1970-01-01 00:00:00");
}

TEST(ClockTest, AdvanceAndSet) {
  Clock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(200);
  EXPECT_EQ(clock.now(), 200);
}

TEST(ClockTest, RefusesToGoBackwards) {
  Clock clock(100);
  EXPECT_THROW(clock.advance(-1), std::invalid_argument);
  EXPECT_THROW(clock.set(99), std::invalid_argument);
}

// ---------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
  EXPECT_THROW(rng.uniform_int(1, 0), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PoissonMoments) {
  Rng rng(19);
  for (double mean : {0.5, 3.0, 12.0, 80.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.1);
}

TEST(RngTest, GeometricMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.15);  // (1-p)/p = 3
  EXPECT_EQ(rng.geometric(1.0), 0);
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
}

TEST(RngTest, IndexAndPick) {
  Rng rng(37);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
  const std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(43);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child_a.next() == child_b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ChildDoesNotAdvanceParent) {
  // child() is a const derivation: unlike fork(), it must leave the
  // parent stream untouched (the parallel call sites rely on this).
  Rng with_children(61), untouched(61);
  (void)with_children.child(0);
  (void)with_children.child(1);
  (void)with_children.child(99999);
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(with_children.next(), untouched.next());
}

TEST(RngTest, ChildDerivationIsOrderIndependent) {
  // Deriving children in any order yields the same streams — the
  // property that makes per-index child streams safe under arbitrary
  // thread scheduling.
  Rng a(67), b(67);
  Rng a1 = a.child(1);
  Rng a2 = a.child(2);
  Rng b2 = b.child(2);
  Rng b1 = b.child(1);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(a1.next(), b1.next());
    ASSERT_EQ(a2.next(), b2.next());
  }
}

TEST(RngTest, ChildStreamsDoNotOverlap) {
  // 100 children x 64 draws: all 6400 values distinct (collision
  // probability among 64-bit values is ~1e-12).
  Rng parent(71);
  std::set<std::uint64_t> seen;
  for (std::uint64_t label = 0; label < 100; ++label) {
    Rng child = parent.child(label);
    for (int i = 0; i < 64; ++i) seen.insert(child.next());
  }
  EXPECT_EQ(seen.size(), 6400u);
}

TEST(RngTest, ChildDependsOnLabelAndParentState) {
  Rng parent(73);
  EXPECT_NE(parent.child(1).next(), parent.child(2).next());
  Rng advanced(73);
  (void)advanced.next();
  // Same label, different parent state -> different stream.
  EXPECT_NE(parent.child(1).next(), advanced.child(1).next());
}

TEST(RngTest, ChildDerivationIndependentOfThreadScheduling) {
  const Rng base(79);
  constexpr int kStreams = 16;
  std::vector<std::uint64_t> serial(kStreams);
  for (int i = 0; i < kStreams; ++i)
    serial[static_cast<std::size_t>(i)] =
        base.child(static_cast<std::uint64_t>(i)).next();

  // Derive the same children from concurrent threads in whatever order
  // the scheduler picks; outputs must match the serial derivation.
  std::vector<std::uint64_t> threaded(kStreams);
  std::vector<std::thread> threads;
  for (int i = 0; i < kStreams; ++i)
    threads.emplace_back([&base, &threaded, i] {
      threaded[static_cast<std::size_t>(i)] =
          base.child(static_cast<std::uint64_t>(i)).next();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(threaded, serial);
}

TEST(RngTest, FillBytesDeterministicAndFull) {
  Rng a(47), b(47);
  std::uint8_t buf_a[37], buf_b[37];
  a.fill_bytes(buf_a, sizeof buf_a);
  b.fill_bytes(buf_b, sizeof buf_b);
  EXPECT_EQ(0, std::memcmp(buf_a, buf_b, sizeof buf_a));
  // Not all zero.
  bool nonzero = false;
  for (auto byte : buf_a) nonzero |= byte != 0;
  EXPECT_TRUE(nonzero);
}

// ---------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------

TEST(EncodingTest, Base32KnownVectors) {
  // RFC 4648 vectors, lowercased (Tor renders onion addresses lowercase).
  const auto encode_str = [](std::string_view s) {
    return base32_encode(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  };
  EXPECT_EQ(encode_str(""), "");
  EXPECT_EQ(encode_str("f"), "my");
  EXPECT_EQ(encode_str("fo"), "mzxq");
  EXPECT_EQ(encode_str("foo"), "mzxw6");
  EXPECT_EQ(encode_str("foob"), "mzxw6yq");
  EXPECT_EQ(encode_str("fooba"), "mzxw6ytb");
  EXPECT_EQ(encode_str("foobar"), "mzxw6ytboi");
}

TEST(EncodingTest, Base32TenBytesIsSixteenChars) {
  std::vector<std::uint8_t> ten(10, 0xab);
  EXPECT_EQ(base32_encode(ten).size(), 16u);
}

TEST(EncodingTest, Base32RoundTrip) {
  Rng rng(53);
  for (std::size_t len : {1u, 5u, 10u, 20u, 33u}) {
    std::vector<std::uint8_t> data(len);
    rng.fill_bytes(data.data(), len);
    EXPECT_EQ(base32_decode(base32_encode(data)), data) << "len=" << len;
  }
}

TEST(EncodingTest, Base32DecodeAcceptsUppercase) {
  EXPECT_EQ(base32_decode("MZXW6YTBOI"), base32_decode("mzxw6ytboi"));
}

TEST(EncodingTest, Base32DecodeRejectsBadChars) {
  EXPECT_THROW(base32_decode("abc0"), std::invalid_argument);  // no '0'
  EXPECT_THROW(base32_decode("abc1"), std::invalid_argument);  // no '1'
  EXPECT_THROW(base32_decode("ab!c"), std::invalid_argument);
}

TEST(EncodingTest, HexRoundTrip) {
  Rng rng(59);
  std::vector<std::uint8_t> data(20);
  rng.fill_bytes(data.data(), data.size());
  EXPECT_EQ(hex_decode(hex_encode(data)), data);
}

TEST(EncodingTest, HexKnownVector) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(hex_encode(bytes), "00ff10ab");
  EXPECT_EQ(hex_decode("00FF10AB"), bytes);
}

TEST(EncodingTest, HexRejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"x"}, "-"), "x");
}

TEST(StringsTest, ToLowerAndTrim) {
  EXPECT_EQ(to_lower("HeLLo 123"), "hello 123");
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, TokenizeWords) {
  EXPECT_EQ(tokenize_words("Hello, World! 42 foo-bar"),
            (std::vector<std::string>{"hello", "world", "foo", "bar"}));
  EXPECT_TRUE(tokenize_words("123 456").empty());
  EXPECT_TRUE(tokenize_words("").empty());
}

TEST(StringsTest, CountWordsMatchesTokenize) {
  for (std::string_view text :
       {"one two three", "", "a,b,,c!!", "x", "  spaces   here  ",
        "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1"}) {
    EXPECT_EQ(count_words(text), tokenize_words(text).size()) << text;
  }
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("silkroad", "sil"));
  EXPECT_FALSE(starts_with("si", "sil"));
  EXPECT_TRUE(ends_with("host.onion", ".onion"));
  EXPECT_FALSE(ends_with("onion", ".onion"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("no match", "x", "y"), "no match");
  EXPECT_EQ(replace_all("abcabc", "bc", "-"), "a-a-");
  EXPECT_THROW(replace_all("abc", "", "x"), std::invalid_argument);
}

}  // namespace
}  // namespace torsim::util

// ---------------------------------------------------------------------
// csv
// ---------------------------------------------------------------------
#include <cstdio>
#include <fstream>

#include "util/csv.hpp"

namespace torsim::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(CsvTest, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("multi\nline"), "\"multi\nline\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvTest, EscapeCarriageReturnAndEdgeCases) {
  // \r alone must force quoting (RFC 4180 treats CRLF as the record
  // separator, so a bare CR in a field corrupts row framing).
  EXPECT_EQ(csv_escape("dos\r\nline"), "\"dos\r\nline\"");
  EXPECT_EQ(csv_escape("bare\rcr"), "\"bare\rcr\"");
  // Quotes double even when the field also needs wrapping for commas.
  EXPECT_EQ(csv_escape("a\"b,c\"d"), "\"a\"\"b,c\"\"d\"");
  // A field that is only a quote.
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
  // Leading/trailing spaces are preserved verbatim, not quoted.
  EXPECT_EQ(csv_escape("  padded  "), "  padded  ");
}

TEST(CsvTest, WriterRoundTripsNastyFields) {
  const std::string path = "/tmp/torsim_csv_nasty_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"onion,with,commas", "say \"hi\"", "line\nbreak", "cr\rhere"});
  }
  EXPECT_EQ(read_file(path),
            "\"onion,with,commas\",\"say \"\"hi\"\"\","
            "\"line\nbreak\",\"cr\rhere\"\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WritesRows) {
  const std::string path = "/tmp/torsim_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"a", "b,c"});
    csv.typed_row(1, 2.5, "x");
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path), "a,\"b,c\"\n1,2.5,x\n");
  std::remove(path.c_str());
}

TEST(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace torsim::util

// ---------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------
#include "util/logging.hpp"

namespace torsim::util {
namespace {

TEST(LoggingTest, LevelThresholdRespected) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are discarded without side effects; the
  // macro's stream body must still compile and evaluate safely.
  TORSIM_DEBUG() << "discarded " << 42;
  TORSIM_INFO() << "discarded too";
  set_log_level(LogLevel::kOff);
  TORSIM_ERROR() << "also discarded at kOff";
  set_log_level(original);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

}  // namespace
}  // namespace torsim::util
