#include <gtest/gtest.h>

#include "geo/client_map.hpp"
#include "geo/geoip.hpp"

namespace torsim::geo {
namespace {

TEST(GeoDatabaseTest, CountryTableSane) {
  const auto& countries = country_table();
  EXPECT_GE(countries.size(), 30u);
  for (const auto& c : countries) {
    EXPECT_EQ(c.code.size(), 2u);
    EXPECT_FALSE(c.name.empty());
    EXPECT_GT(c.weight, 0.0);
  }
}

TEST(GeoDatabaseTest, EveryPrefixMapsToACountry) {
  const auto db = GeoDatabase::standard();
  for (int a = 0; a < 256; ++a) {
    const util::Ipv4 ip(static_cast<std::uint32_t>(a) << 24 | 1);
    EXPECT_FALSE(db.lookup(ip).code.empty());
  }
}

TEST(GeoDatabaseTest, SampleAddressRoundTrips) {
  const auto db = GeoDatabase::standard();
  util::Rng rng(1);
  for (const char* code : {"US", "CN", "DE", "BR", "RU"}) {
    for (int i = 0; i < 50; ++i) {
      const auto ip = db.sample_address(code, rng);
      EXPECT_EQ(db.lookup(ip).code, code) << ip.to_string();
    }
  }
}

TEST(GeoDatabaseTest, UnknownCountryThrows) {
  const auto db = GeoDatabase::standard();
  util::Rng rng(2);
  EXPECT_THROW(db.sample_address("XX", rng), std::invalid_argument);
}

TEST(GeoDatabaseTest, GlobalSamplingFollowsWeights) {
  const auto db = GeoDatabase::standard();
  util::Rng rng(3);
  int china = 0, hungary = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto& country = db.lookup(db.sample_global(rng));
    if (country.code == "CN") ++china;
    if (country.code == "HU") ++hungary;
  }
  // China (22%) must dwarf Hungary (0.3%).
  EXPECT_GT(china, 10 * std::max(1, hungary));
  EXPECT_NEAR(static_cast<double>(china) / n, 0.22, 0.04);
}

TEST(GeoDatabaseTest, DeterministicForSeed) {
  const auto a = GeoDatabase::standard(5);
  const auto b = GeoDatabase::standard(5);
  for (int p = 0; p < 256; ++p) {
    const util::Ipv4 ip(static_cast<std::uint32_t>(p) << 24 | 7);
    EXPECT_EQ(a.lookup(ip).code, b.lookup(ip).code);
  }
}

TEST(ClientMapTest, AggregatesByCountry) {
  const auto db = GeoDatabase::standard();
  util::Rng rng(4);
  std::vector<util::Ipv4> clients;
  for (int i = 0; i < 100; ++i) clients.push_back(db.sample_address("US", rng));
  for (int i = 0; i < 50; ++i) clients.push_back(db.sample_address("DE", rng));
  const auto map = build_client_map(clients, db);
  EXPECT_EQ(map.total_clients, 150);
  EXPECT_EQ(map.per_country.count("US"), 100);
  EXPECT_EQ(map.per_country.count("DE"), 50);
  const auto rows = map.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].code, "US");
  EXPECT_EQ(rows[0].name, "United States");
  EXPECT_NEAR(rows[0].share, 2.0 / 3.0, 1e-9);
}

TEST(ClientMapTest, EmptyInputYieldsEmptyMap) {
  const auto db = GeoDatabase::standard();
  const auto map = build_client_map({}, db);
  EXPECT_EQ(map.total_clients, 0);
  EXPECT_TRUE(map.rows().empty());
}

}  // namespace
}  // namespace torsim::geo
