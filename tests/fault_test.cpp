// Unit tests for the deterministic fault-injection engine (src/fault)
// and its instrumentation points: descriptor store visibility, directory
// publish/fetch, client retry, port scan and crawl accounting.
//
// The chaos/property harness lives in chaos_scenario_test.cpp (ctest
// label "chaos"); this file covers the deterministic contracts.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dirauth/authority.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hs/client.hpp"
#include "hs/service_host.hpp"
#include "hsdir/directory_network.hpp"
#include "population/population.hpp"
#include "relay/registry.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "sim/world.hpp"

namespace torsim {
namespace {

constexpr util::UnixTime kT0 = 1359676800;  // 2013-02-01

// ---------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffSchedule) {
  fault::RetryPolicy policy{.max_attempts = 4,
                            .base_backoff = 2,
                            .backoff_multiplier = 2.0};
  EXPECT_EQ(policy.backoff_before(1), 0);
  EXPECT_EQ(policy.backoff_before(2), 2);
  EXPECT_EQ(policy.backoff_before(3), 4);
  EXPECT_EQ(policy.backoff_before(4), 8);
  EXPECT_EQ(policy.total_backoff(1), 0);
  EXPECT_EQ(policy.total_backoff(4), 14);
}

TEST(RetryPolicyTest, NonIntegerMultiplierRounds) {
  fault::RetryPolicy policy{.max_attempts = 3,
                            .base_backoff = 3,
                            .backoff_multiplier = 1.5};
  EXPECT_EQ(policy.backoff_before(3), 5);  // llround(4.5)
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

TEST(FaultPlanTest, DefaultPlanIsDisabled) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(fault::FaultPlan::profile("none").enabled());
}

TEST(FaultPlanTest, ProfilesAreOrderedBySeverity) {
  const auto mild = fault::FaultPlan::profile("mild");
  const auto moderate = fault::FaultPlan::profile("moderate");
  const auto severe = fault::FaultPlan::profile("severe");
  EXPECT_TRUE(mild.enabled());
  EXPECT_LT(mild.connect_timeout_rate, moderate.connect_timeout_rate);
  EXPECT_LT(moderate.connect_timeout_rate, severe.connect_timeout_rate);
  EXPECT_LT(mild.publish_loss_rate, severe.publish_loss_rate);
  EXPECT_GE(severe.retry.max_attempts, moderate.retry.max_attempts);
}

TEST(FaultPlanTest, ParseKeyValueSpec) {
  const auto plan = fault::FaultPlan::parse(
      "drop=0.1,timeout=0.05,corrupt=0.01,hsdir-flaky=0.2,hsdir-outage=0.5,"
      "publish-loss=0.1,publish-delay=0.2,stall=0.3,retries=4,seed=7");
  EXPECT_DOUBLE_EQ(plan.connect_drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.connect_timeout_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.connect_corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.hsdir_flaky_fraction, 0.2);
  EXPECT_DOUBLE_EQ(plan.hsdir_outage_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.publish_loss_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.publish_delay_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.circuit_stall_rate, 0.3);
  EXPECT_EQ(plan.retry.max_attempts, 4);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanTest, ParseProfileNameWithoutEquals) {
  EXPECT_DOUBLE_EQ(fault::FaultPlan::parse("severe").connect_drop_rate,
                   fault::FaultPlan::profile("severe").connect_drop_rate);
}

TEST(FaultPlanTest, ParseRejectsBadInput) {
  EXPECT_THROW(fault::FaultPlan::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("frob=0.1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("retries=0"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop"), std::invalid_argument);
}

TEST(FaultPlanTest, DescribeSummarisesRates) {
  EXPECT_EQ(fault::FaultPlan{}.describe(), "faults: none");
  const auto text = fault::FaultPlan::profile("mild").describe();
  EXPECT_NE(text.find("drop=0.01"), std::string::npos);
  EXPECT_NE(text.find("retries=3"), std::string::npos);
}

// ---------------------------------------------------------------------
// FaultInjector purity + coupling
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, DisabledPlanInjectsNothing) {
  fault::FaultInjector injector{fault::FaultPlan{}};
  EXPECT_FALSE(injector.enabled());
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(injector.connect_fault(key, 80, 1), fault::ConnectFault::kNone);
    EXPECT_FALSE(injector.hsdir_unresponsive(key, kT0));
    EXPECT_FALSE(injector.publish_lost(key, key, 1));
    EXPECT_FALSE(injector.publish_delayed(key, key));
    EXPECT_FALSE(injector.circuit_stalled(key, 0, 1));
  }
}

TEST(FaultInjectorTest, DecisionsAreReproducibleAndStateless) {
  const auto plan = fault::FaultPlan::profile("moderate");
  fault::FaultInjector a{plan};
  fault::FaultInjector b{plan};
  // Query a forward and b backward: pure decisions cannot depend on
  // query order or on any state accumulated by earlier queries.
  std::vector<fault::ConnectFault> forward, backward;
  for (std::uint64_t key = 0; key < 500; ++key)
    forward.push_back(a.connect_fault(key, 443, 1));
  for (std::uint64_t key = 500; key-- > 0;)
    backward.push_back(b.connect_fault(key, 443, 1));
  for (std::size_t i = 0; i < forward.size(); ++i)
    EXPECT_EQ(forward[i], backward[forward.size() - 1 - i]) << i;
}

TEST(FaultInjectorTest, DifferentSeedsDifferentDecisions) {
  auto plan = fault::FaultPlan::profile("severe");
  fault::FaultInjector a{plan};
  plan.seed = 999;
  fault::FaultInjector b{plan};
  int differing = 0;
  for (std::uint64_t key = 0; key < 500; ++key)
    differing += a.connect_fault(key, 80, 1) != b.connect_fault(key, 80, 1);
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, RaisingRatesOnlyGrowsTheFaultedSet) {
  // Threshold coupling: an event faulted at low rates stays faulted at
  // higher rates (the kind may shift between bands, but never back to
  // kNone). This is what makes coverage sweeps monotone.
  fault::FaultPlan low;
  low.connect_drop_rate = 0.02;
  low.connect_timeout_rate = 0.05;
  low.connect_corrupt_rate = 0.01;
  fault::FaultPlan high = low;
  high.connect_drop_rate = 0.10;
  high.connect_timeout_rate = 0.20;
  high.connect_corrupt_rate = 0.05;
  fault::FaultInjector a{low};
  fault::FaultInjector b{high};
  for (std::uint64_t key = 0; key < 2000; ++key) {
    if (a.connect_fault(key, 80, 1) != fault::ConnectFault::kNone) {
      EXPECT_NE(b.connect_fault(key, 80, 1), fault::ConnectFault::kNone)
          << key;
    }
  }
}

TEST(FaultInjectorTest, ConnectFaultRatesMatchThePlan) {
  fault::FaultPlan plan;
  plan.connect_drop_rate = 0.10;
  plan.connect_timeout_rate = 0.20;
  plan.connect_corrupt_rate = 0.05;
  fault::FaultInjector injector{plan};
  int drop = 0, timeout = 0, corrupt = 0;
  constexpr int kEvents = 20000;
  for (std::uint64_t key = 0; key < kEvents; ++key) {
    switch (injector.connect_fault(key, 80, 1)) {
      case fault::ConnectFault::kDrop: ++drop; break;
      case fault::ConnectFault::kTimeout: ++timeout; break;
      case fault::ConnectFault::kCorrupt: ++corrupt; break;
      case fault::ConnectFault::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(drop) / kEvents, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(timeout) / kEvents, 0.20, 0.015);
  EXPECT_NEAR(static_cast<double>(corrupt) / kEvents, 0.05, 0.01);
}

TEST(FaultInjectorTest, AttemptsDrawIndependently) {
  fault::FaultPlan plan;
  plan.connect_timeout_rate = 0.5;
  fault::FaultInjector injector{plan};
  // A key that times out on attempt 1 is not doomed on attempt 2.
  int recovered = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (injector.connect_fault(key, 80, 1) == fault::ConnectFault::kTimeout &&
        injector.connect_fault(key, 80, 2) == fault::ConnectFault::kNone)
      ++recovered;
  }
  EXPECT_GT(recovered, 100);  // ~ 0.5 * 0.5 * 1000
}

TEST(FaultInjectorTest, HsdirOutageConstantWithinWindow) {
  fault::FaultPlan plan;
  plan.hsdir_flaky_fraction = 1.0;
  plan.hsdir_outage_rate = 0.5;
  plan.hsdir_outage_window = 3600;
  fault::FaultInjector injector{plan};
  for (std::uint64_t relay = 0; relay < 50; ++relay) {
    const bool at_start = injector.hsdir_unresponsive(relay, kT0);
    for (util::Seconds dt : {1, 600, 3599})
      EXPECT_EQ(injector.hsdir_unresponsive(relay, kT0 + dt), at_start)
          << relay;
  }
}

TEST(FaultInjectorTest, OnlyFlakyDirsHaveOutages) {
  fault::FaultPlan plan;
  plan.hsdir_flaky_fraction = 0.0;
  plan.hsdir_outage_rate = 1.0;
  plan.publish_loss_rate = 0.1;  // keep the plan enabled
  fault::FaultInjector injector{plan};
  for (std::uint64_t relay = 0; relay < 200; ++relay)
    EXPECT_FALSE(injector.hsdir_unresponsive(relay, kT0));
}

TEST(FaultInjectorTest, StringAndByteKeysAgree) {
  const std::string text = "msydqstlz2kzerdg";
  EXPECT_EQ(fault::FaultInjector::key_of(text),
            fault::FaultInjector::key_of(
                reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
  EXPECT_NE(fault::FaultInjector::key_of("a"),
            fault::FaultInjector::key_of("b"));
}

TEST(FaultInjectorTest, FailureKindNamesAreStable) {
  EXPECT_STREQ(fault::to_string(fault::FailureKind::kConnectDrop),
               "connect-drop");
  EXPECT_STREQ(fault::to_string(fault::FailureKind::kRetriesExhausted),
               "retries-exhausted");
  EXPECT_STREQ(fault::to_string(fault::ConnectFault::kCorrupt), "corrupt");
}

// ---------------------------------------------------------------------
// Descriptor store visibility (delayed publishes)
// ---------------------------------------------------------------------

TEST(FaultStoreTest, VisibleAfterGatesFetch) {
  util::Rng rng(31);
  hsdir::DescriptorStore store;
  const auto key = crypto::KeyPair::generate(rng);
  auto d = hsdir::make_descriptor(key, {}, 0, kT0);
  d.visible_after = kT0 + 7200;
  store.store(d);
  EXPECT_FALSE(store.fetch(d.descriptor_id, kT0 + 7199).has_value());
  EXPECT_TRUE(store.fetch(d.descriptor_id, kT0 + 7200).has_value());
}

// ---------------------------------------------------------------------
// DirectoryNetwork + Client under faults
// ---------------------------------------------------------------------

struct FaultNet {
  relay::Registry registry;
  dirauth::Authority authority;
  dirauth::Consensus consensus;
  hsdir::DirectoryNetwork dirnet;
  fault::FaultInjector injector;
  util::Rng rng{20130204};

  explicit FaultNet(const fault::FaultPlan& plan, int relays = 30)
      : injector(plan) {
    for (int i = 0; i < relays; ++i) {
      relay::RelayConfig rc;
      rc.nickname = "n" + std::to_string(i);
      rc.address = util::Ipv4::random_public(rng);
      rc.bandwidth_kbps = 100.0;
      const auto id =
          registry.create(rc, rng, kT0 - 30 * util::kSecondsPerHour);
      registry.get(id).set_online(true, kT0 - 30 * util::kSecondsPerHour);
    }
    consensus = authority.build_consensus(registry, kT0);
    dirnet.set_fault_injector(&injector);
  }

  hs::ServiceHost make_service() { return hs::ServiceHost::create(rng, kT0); }
};

TEST(DirectoryFaultTest, PublishLossIsTypedAndDeterministic) {
  fault::FaultPlan plan;
  plan.publish_loss_rate = 0.9;
  plan.retry.max_attempts = 2;

  const auto run = [&](fault::FailureLog* log) {
    FaultNet net(plan);
    auto service = net.make_service();
    const auto receivers =
        service.maybe_publish(net.consensus, net.dirnet, net.rng, kT0);
    if (log != nullptr) *log = net.dirnet.failure_log();
    return std::pair<std::size_t, int>(receivers.size(),
                                       service.last_publish_lost());
  };
  fault::FailureLog log1, log2;
  const auto [received1, lost1] = run(&log1);
  const auto [received2, lost2] = run(&log2);

  // Same plan, same world seed: byte-identical failure logs.
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(received1, received2);
  EXPECT_EQ(lost1, lost2);
  // At 90% loss with 2 tries, some uploads must fail (p=0.81 each).
  EXPECT_GT(lost1, 0);
  bool saw_lost = false;
  for (const auto& record : log1)
    saw_lost |= record.kind == fault::FailureKind::kPublishLost;
  EXPECT_TRUE(saw_lost);
}

TEST(DirectoryFaultTest, EveryResponsibleDirAccountedFor) {
  fault::FaultPlan plan;
  plan.publish_loss_rate = 0.5;
  FaultNet net(plan);
  auto service = net.make_service();
  const auto receivers =
      service.maybe_publish(net.consensus, net.dirnet, net.rng, kT0);
  // receivers + typed losses == the deduplicated responsible set:
  // nothing disappears silently.
  EXPECT_GT(receivers.size(), 0u);
  EXPECT_GE(service.last_publish_lost(), 0);
  int lost_records = 0;
  for (const auto& record : net.dirnet.failure_log())
    lost_records += record.kind == fault::FailureKind::kPublishLost;
  EXPECT_EQ(lost_records, service.last_publish_lost());
}

TEST(DirectoryFaultTest, DelayedPublishBecomesVisibleLater) {
  fault::FaultPlan plan;
  plan.publish_delay_rate = 1.0;
  plan.publish_delay = 7200;
  FaultNet net(plan);
  auto service = net.make_service();
  const auto receivers =
      service.maybe_publish(net.consensus, net.dirnet, net.rng, kT0);
  ASSERT_GT(receivers.size(), 0u);
  const auto ids = service.current_descriptor_ids(kT0);

  relay::RelayId hsdir = relay::kInvalidRelayId;
  bool visible_now = false;
  bool visible_later = false;
  for (const auto& id : ids) {
    visible_now |=
        net.dirnet.fetch_from(net.consensus, id, kT0 + 1, hsdir).has_value();
    visible_later |= net.dirnet.fetch_from(net.consensus, id, kT0 + 7201,
                                           hsdir).has_value();
  }
  EXPECT_FALSE(visible_now);
  EXPECT_TRUE(visible_later);
  bool saw_delayed = false;
  for (const auto& record : net.dirnet.failure_log())
    saw_delayed |= record.kind == fault::FailureKind::kPublishDelayed;
  EXPECT_TRUE(saw_delayed);
}

TEST(DirectoryFaultTest, TotalOutageYieldsTypedClientFailure) {
  fault::FaultPlan plan;
  plan.hsdir_flaky_fraction = 1.0;
  plan.hsdir_outage_rate = 1.0;
  FaultNet net(plan);
  auto service = net.make_service();
  (void)service.maybe_publish(net.consensus, net.dirnet, net.rng, kT0);
  net.dirnet.clear_failure_log();

  hs::Client client(util::Ipv4::random_public(net.rng), 99);
  client.maintain(net.consensus, kT0);
  const auto outcome = client.fetch_descriptor(
      service.onion_address(), net.consensus, net.dirnet, kT0);
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.failure, hs::FetchFailure::kDirsUnresponsive);
  EXPECT_EQ(outcome.attempts, plan.retry.max_attempts);
  EXPECT_EQ(outcome.backoff_spent,
            plan.retry.total_backoff(plan.retry.max_attempts));
  bool saw_unresponsive = false;
  for (const auto& record : net.dirnet.failure_log())
    saw_unresponsive |=
        record.kind == fault::FailureKind::kHsdirUnresponsive;
  EXPECT_TRUE(saw_unresponsive);
}

TEST(DirectoryFaultTest, MissingDescriptorIsDefinitiveNotRetried) {
  fault::FaultPlan plan;
  plan.connect_drop_rate = 0.1;  // enabled, but directories are healthy
  FaultNet net(plan);
  hs::Client client(util::Ipv4::random_public(net.rng), 99);
  client.maintain(net.consensus, kT0);
  crypto::DescriptorId missing{};
  const auto outcome =
      client.fetch_descriptor_id(missing, net.consensus, net.dirnet, kT0);
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.failure, hs::FetchFailure::kNotFound);
  EXPECT_EQ(outcome.attempts, 1);  // a definitive miss is not retried
  EXPECT_EQ(outcome.backoff_spent, 0);
}

TEST(DirectoryFaultTest, NoInjectorMatchesDisabledInjector) {
  // A wired-but-disabled injector must not perturb anything.
  const auto run = [&](bool wire_disabled) {
    FaultNet net(fault::FaultPlan{});
    if (!wire_disabled) net.dirnet.set_fault_injector(nullptr);
    auto service = net.make_service();
    auto receivers =
        service.maybe_publish(net.consensus, net.dirnet, net.rng, kT0);
    hs::Client client(util::Ipv4::random_public(net.rng), 99);
    client.maintain(net.consensus, kT0);
    const auto outcome = client.fetch_descriptor(
        service.onion_address(), net.consensus, net.dirnet, kT0);
    return std::tuple<std::vector<relay::RelayId>, bool, int>(
        receivers, outcome.found, outcome.attempts);
  };
  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------
// World wiring
// ---------------------------------------------------------------------

TEST(WorldFaultTest, WorldOwnsInjectorWhenPlanEnabled) {
  sim::WorldConfig wc;
  wc.honest_relays = 40;
  wc.faults = fault::FaultPlan::profile("mild");
  sim::World world(wc);
  ASSERT_NE(world.fault_injector(), nullptr);
  EXPECT_EQ(world.directories().fault_injector(), world.fault_injector());
  world.run_hours(2);  // survives stepping with faults active
}

TEST(WorldFaultTest, NoInjectorForDefaultPlan) {
  sim::WorldConfig wc;
  wc.honest_relays = 40;
  sim::World world(wc);
  EXPECT_EQ(world.fault_injector(), nullptr);
  EXPECT_EQ(world.directories().fault_injector(), nullptr);
}

// ---------------------------------------------------------------------
// Port scan accounting under faults
// ---------------------------------------------------------------------

const population::Population& scan_population() {
  static const population::Population pop = [] {
    population::PopulationConfig config;
    config.seed = 77;
    config.scale = 0.05;
    return population::Population::generate(config);
  }();
  return pop;
}

std::int64_t true_open_ports(const population::Population& pop) {
  std::int64_t total = 0;
  for (const auto svc : pop.services())
    if (svc.published_at_scan())
      total +=
          static_cast<std::int64_t>(svc.profile().scannable_ports().size());
  return total;
}

TEST(ScanFaultTest, EveryProbeLandsInExactlyOneBucket) {
  for (const char* profile : {"none", "mild", "severe"}) {
    scan::ScanConfig config;
    config.faults = fault::FaultPlan::profile(profile);
    const auto report = scan::PortScanner(config).scan(scan_population());
    // open + timeout + closed together cover every scannable port of
    // every scanned service: no probe outcome goes missing.
    EXPECT_EQ(report.open_ports.total() + report.probe_timeouts +
                  report.probes_closed,
              true_open_ports(scan_population()))
        << profile;
    EXPECT_EQ(report.probe_timeouts, report.timeout_ports.total());
    EXPECT_EQ(report.probes_closed, report.closed_ports.total());
  }
}

TEST(ScanFaultTest, ZeroPlanAddsNoFaultArtifacts) {
  scan::ScanConfig config;
  const auto report = scan::PortScanner(config).scan(scan_population());
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.probes_corrupt, 0);
  EXPECT_EQ(report.probes_recovered, 0);
  EXPECT_EQ(report.probes_closed, 0);
  EXPECT_GT(report.probe_timeouts, 0);  // churn + overload still happen
}

TEST(ScanFaultTest, CoverageMonotoneInConnectionFaultRate) {
  double last = 2.0;
  for (double rate : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    scan::ScanConfig config;
    config.faults.connect_drop_rate = rate / 2;
    config.faults.connect_timeout_rate = rate / 2;
    const auto report = scan::PortScanner(config).scan(scan_population());
    EXPECT_LE(report.coverage, last) << rate;
    last = report.coverage;
  }
}

TEST(ScanFaultTest, FaultedScanIdenticalAcrossThreadCounts) {
  scan::ScanConfig serial;
  serial.threads = 1;
  serial.faults = fault::FaultPlan::profile("moderate");
  scan::ScanConfig parallel = serial;
  parallel.threads = 4;
  const auto a = scan::PortScanner(serial).scan(scan_population());
  const auto b = scan::PortScanner(parallel).scan(scan_population());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.probe_timeouts, b.probe_timeouts);
  EXPECT_EQ(a.probes_closed, b.probes_closed);
  EXPECT_EQ(a.probes_corrupt, b.probes_corrupt);
  EXPECT_EQ(a.probes_recovered, b.probes_recovered);
  EXPECT_EQ(a.observations.size(), b.observations.size());
  EXPECT_EQ(a.coverage, b.coverage);
}

// ---------------------------------------------------------------------
// Crawler accounting under faults
// ---------------------------------------------------------------------

TEST(CrawlFaultTest, ZeroPlanAddsNoFaultArtifacts) {
  const auto scan_report =
      scan::PortScanner(scan::ScanConfig{}).scan(scan_population());
  const auto crawl = scan::Crawler().crawl(scan_population(), scan_report);
  EXPECT_TRUE(crawl.failures.empty());
  EXPECT_EQ(crawl.failed_closed, 0);
  EXPECT_EQ(crawl.corrupt_pages, 0);
  EXPECT_EQ(crawl.recovered_by_revisit, 0);
}

TEST(CrawlFaultTest, RevisitsRecoverCircuitFailures) {
  const auto scan_report =
      scan::PortScanner(scan::ScanConfig{}).scan(scan_population());
  scan::CrawlConfig single;
  single.connect_success = 0.5;
  scan::CrawlConfig retried = single;
  retried.revisit_attempts = 5;
  const auto once = scan::Crawler(single).crawl(scan_population(),
                                                scan_report);
  const auto again = scan::Crawler(retried).crawl(scan_population(),
                                                  scan_report);
  EXPECT_GT(again.connected, once.connected);
  EXPECT_GT(again.recovered_by_revisit, 0);
  EXPECT_LT(again.failed_timeout, once.failed_timeout);
}

TEST(CrawlFaultTest, InjectedFaultsAreTypedAndDeterministic) {
  const auto scan_report =
      scan::PortScanner(scan::ScanConfig{}).scan(scan_population());
  scan::CrawlConfig config;
  config.faults = fault::FaultPlan::profile("severe");
  const auto a = scan::Crawler(config).crawl(scan_population(), scan_report);
  const auto b = scan::Crawler(config).crawl(scan_population(), scan_report);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.connected, b.connected);
  EXPECT_GT(a.failures.size(), 0u);
  EXPECT_GT(a.failed_closed, 0);
  EXPECT_GT(a.corrupt_pages, 0);
  // Fewer pages than the healthy crawl, never more.
  const auto healthy =
      scan::Crawler(scan::CrawlConfig{}).crawl(scan_population(),
                                               scan_report);
  EXPECT_LE(a.connected, healthy.connected);
}

}  // namespace
}  // namespace torsim
