#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/world.hpp"
#include "trackdet/detector.hpp"
#include "trackdet/history.hpp"
#include "trackdet/history_simulator.hpp"
#include "trackdet/scenario.hpp"

namespace torsim::trackdet {
namespace {

crypto::PermanentId test_target() {
  return crypto::permanent_id_from_fingerprint(crypto::sha1("test-target"));
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

TEST(SnapshotTest, EntriesSortedAndResponsibleSuccessors) {
  util::Rng rng(1);
  std::vector<SnapshotEntry> entries;
  for (std::uint32_t i = 0; i < 20; ++i) {
    SnapshotEntry e;
    rng.fill_bytes(e.fingerprint.data(), e.fingerprint.size());
    e.server = i;
    entries.push_back(e);
  }
  Snapshot snap(0, entries);
  for (std::size_t i = 1; i < snap.entries().size(); ++i)
    EXPECT_LT(snap.entries()[i - 1].fingerprint,
              snap.entries()[i].fingerprint);

  crypto::DescriptorId id{};
  id[0] = 0x77;
  const auto responsible = snap.responsible(id);
  ASSERT_EQ(responsible.size(), 3u);
  // First responsible is the first entry strictly after the id.
  for (const auto& e : snap.entries()) {
    if (e.fingerprint > id) {
      EXPECT_EQ(responsible[0]->fingerprint, e.fingerprint);
      break;
    }
  }
}

TEST(SnapshotTest, ResponsibleWrapsAndHandlesSmallRings) {
  std::vector<SnapshotEntry> entries(2);
  entries[0].fingerprint.fill(0x10);
  entries[0].server = 0;
  entries[1].fingerprint.fill(0x20);
  entries[1].server = 1;
  Snapshot snap(0, entries);
  crypto::DescriptorId high;
  high.fill(0xf0);
  const auto responsible = snap.responsible(high);
  ASSERT_EQ(responsible.size(), 2u);
  EXPECT_EQ(responsible[0]->server, 0u);  // wrapped to the smallest
  Snapshot empty(0, {});
  EXPECT_TRUE(empty.responsible(high).empty());
}

TEST(SnapshotTest, AverageGap) {
  std::vector<SnapshotEntry> entries(4);
  for (int i = 0; i < 4; ++i) entries[static_cast<std::size_t>(i)].server = 0;
  Snapshot snap(0, entries);
  EXPECT_DOUBLE_EQ(snap.average_gap(), std::ldexp(1.0, 160) / 4.0);
}

// ---------------------------------------------------------------------
// HistorySimulator
// ---------------------------------------------------------------------

TEST(HistorySimulatorTest, NetworkGrowsAcrossArchive) {
  HistoryConfig config;
  config.seed = 2;
  config.start = util::make_utc(2012, 1, 1);
  config.end = util::make_utc(2012, 7, 1);
  config.hsdirs_at_start = 300;
  config.hsdirs_at_end = 600;
  const auto history = HistorySimulator(config).simulate(test_target(), {});
  ASSERT_FALSE(history.snapshots.empty());
  EXPECT_NEAR(static_cast<double>(history.snapshots.front().size()), 300, 10);
  EXPECT_NEAR(static_cast<double>(history.snapshots.back().size()), 600, 15);
}

TEST(HistorySimulatorTest, OneSnapshotPerDay) {
  HistoryConfig config;
  config.seed = 3;
  config.start = util::make_utc(2012, 1, 1);
  config.end = util::make_utc(2012, 2, 1);
  const auto history = HistorySimulator(config).simulate(test_target(), {});
  EXPECT_EQ(history.snapshots.size(), 31u);
  for (std::size_t i = 1; i < history.snapshots.size(); ++i)
    EXPECT_EQ(history.snapshots[i].time() - history.snapshots[i - 1].time(),
              util::kSecondsPerDay);
}

TEST(HistorySimulatorTest, CampaignServersTaggedAndPositioned) {
  HistoryConfig config;
  config.seed = 4;
  config.start = util::make_utc(2013, 5, 1);
  config.end = util::make_utc(2013, 7, 1);
  CampaignSpec spec;
  spec.name = "evil";
  spec.from = util::make_utc(2013, 5, 21);
  spec.to = util::make_utc(2013, 6, 4);
  spec.servers = 4;
  spec.slots_per_period = 1;
  spec.ring_fraction = 1e-8;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  int campaign_servers = 0;
  for (const auto& server : history.servers)
    if (server.truth_campaign == "evil") ++campaign_servers;
  EXPECT_EQ(campaign_servers, 4);

  // During the campaign window, a campaign fingerprint sits within the
  // ground arc of one of the target's descriptor ids.
  int positioned_days = 0;
  for (const auto& snap : history.snapshots) {
    if (snap.time() < spec.from || snap.time() >= spec.to) continue;
    const auto period = crypto::time_period(snap.time(), test_target());
    for (std::uint8_t replica = 0; replica < 2; ++replica) {
      const auto id = crypto::descriptor_id(test_target(), period, replica);
      for (const auto* e : snap.responsible(id)) {
        if (history.server(e->server).truth_campaign == "evil") {
          ++positioned_days;
          const double ratio =
              snap.average_gap() / crypto::ring_distance(id, e->fingerprint);
          EXPECT_GT(ratio, 10000.0);
        }
      }
    }
  }
  EXPECT_GE(positioned_days, 10);
}

TEST(HistorySimulatorTest, SkipProbabilitySkipsPeriods) {
  HistoryConfig config;
  config.seed = 5;
  config.start = util::make_utc(2013, 5, 1);
  config.end = util::make_utc(2013, 6, 10);
  CampaignSpec spec;
  spec.name = "flaky";
  spec.from = util::make_utc(2013, 5, 1);
  spec.to = util::make_utc(2013, 6, 10);
  spec.servers = 2;
  spec.skip_probability = 0.5;
  spec.ring_fraction = 1e-8;
  spec.always_listed = false;  // count ring presence == positioning days
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});
  int active_days = 0;
  for (const auto& snap : history.snapshots) {
    for (const auto& e : snap.entries())
      if (history.server(e.server).truth_campaign == "flaky") {
        ++active_days;
        break;
      }
  }
  EXPECT_GT(active_days, 5);
  EXPECT_LT(active_days, 35);  // ~half of 40 days skipped
}

// ---------------------------------------------------------------------
// TrackingDetector
// ---------------------------------------------------------------------

HsDirHistory clean_history(std::uint64_t seed, int months = 12) {
  HistoryConfig config;
  config.seed = seed;
  config.start = util::make_utc(2012, 1, 1);
  config.end = util::make_utc(2012, 1 + months > 12 ? 12 : 1 + months,
                              months >= 12 ? 31 : 1);
  return HistorySimulator(config).simulate(test_target(), {});
}

TEST(TrackingDetectorTest, CleanYearHasNoStrongSuspects) {
  const auto history = clean_history(6);
  TrackingDetector detector(DetectorConfig{.ratio_threshold = 100.0,
                                           .min_flags = 2,
                                           .min_switches_before_responsible = 2});
  const auto report = detector.analyze(history, test_target());
  // With two rule hits required, honest churn should produce at most a
  // stray hit or two, never a name-sharing cluster with high ratio.
  for (const auto& s : report.suspicious) {
    EXPECT_TRUE(s.truth_campaign.empty());
    EXPECT_LT(s.stats.max_ratio, 10000.0);
  }
  EXPECT_EQ(report.full_takeover_periods, 0);
}

TEST(TrackingDetectorTest, DetectsInjectedCampaign) {
  HistoryConfig config;
  config.seed = 7;
  config.start = util::make_utc(2013, 1, 1);
  config.end = util::make_utc(2013, 12, 31);
  CampaignSpec spec;
  spec.name = "trawler";
  spec.from = util::make_utc(2013, 5, 21);
  spec.to = util::make_utc(2013, 6, 4);
  spec.servers = 4;
  spec.ring_fraction = 1e-8;
  spec.skip_probability = 4.0 / 14.0;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  TrackingDetector detector;
  const auto report = detector.analyze(history, test_target());
  // All four campaign servers flagged...
  std::set<std::string> flagged_campaigns;
  int campaign_hits = 0;
  for (const auto& s : report.suspicious)
    if (s.truth_campaign == "trawler") {
      ++campaign_hits;
      EXPECT_TRUE(s.flags.positioned) << s.name;
      EXPECT_GT(s.stats.max_ratio, 10000.0);
    }
  EXPECT_GE(campaign_hits, 3);
  // ...and clustered by their shared name stem.
  bool cluster_found = false;
  for (const auto& cluster : report.clusters)
    if (cluster.shared_prefix == "trawler") {
      cluster_found = true;
      EXPECT_GE(cluster.servers.size(), 3u);
      EXPECT_GE(cluster.periods_covered, 5);
    }
  EXPECT_TRUE(cluster_found);
}

TEST(TrackingDetectorTest, SuspiciousOrderIsTotalAndReplayable) {
  // Regression for a latent order dependence: the suspicious list used
  // to tie-break in per-server hash-map order. The comparator now ends
  // in the server id, so the report order is a total order — equal
  // (flag-count, periods-responsible) entries must come out in
  // ascending server order, and two analyze() calls must agree exactly.
  HistoryConfig config;
  config.seed = 7;
  config.start = util::make_utc(2013, 1, 1);
  config.end = util::make_utc(2013, 12, 31);
  CampaignSpec spec;
  spec.name = "trawler";
  spec.from = util::make_utc(2013, 5, 21);
  spec.to = util::make_utc(2013, 6, 4);
  spec.servers = 4;
  spec.ring_fraction = 1e-8;
  spec.skip_probability = 4.0 / 14.0;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  TrackingDetector detector;
  const auto report = detector.analyze(history, test_target());
  ASSERT_GT(report.suspicious.size(), 1u);
  for (std::size_t i = 1; i < report.suspicious.size(); ++i) {
    const auto& prev = report.suspicious[i - 1];
    const auto& cur = report.suspicious[i];
    if (prev.flags.count() == cur.flags.count() &&
        prev.stats.periods_responsible == cur.stats.periods_responsible) {
      EXPECT_LT(prev.stats.server, cur.stats.server)
          << "tied entries not in server-id order at index " << i;
    }
  }
  const auto again = detector.analyze(history, test_target());
  ASSERT_EQ(again.suspicious.size(), report.suspicious.size());
  for (std::size_t i = 0; i < report.suspicious.size(); ++i)
    EXPECT_EQ(again.suspicious[i].stats.server,
              report.suspicious[i].stats.server);
  ASSERT_EQ(again.clusters.size(), report.clusters.size());
  for (std::size_t i = 0; i < report.clusters.size(); ++i)
    EXPECT_EQ(again.clusters[i].shared_prefix,
              report.clusters[i].shared_prefix);
}

TEST(TrackingDetectorTest, DetectsFullTakeover) {
  HistoryConfig config;
  config.seed = 8;
  config.start = util::make_utc(2013, 8, 1);
  config.end = util::make_utc(2013, 10, 1);
  CampaignSpec spec;
  spec.name = "seizure";
  spec.from = util::make_utc(2013, 8, 31);
  spec.to = util::make_utc(2013, 9, 1);
  spec.servers = 6;
  spec.slots_per_period = 6;
  spec.ring_fraction = 1e-7;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  TrackingDetector detector;
  const auto report = detector.analyze(history, test_target());
  EXPECT_GE(report.full_takeover_periods, 1);
  bool cluster_found = false;
  for (const auto& cluster : report.clusters)
    if (cluster.shared_prefix == "seizure") {
      cluster_found = true;
      EXPECT_TRUE(cluster.full_takeover);
    }
  EXPECT_TRUE(cluster_found);
}

TEST(TrackingDetectorTest, BinomialThresholdScalesWithHistory) {
  const auto history = clean_history(9, 6);
  TrackingDetector detector;
  const auto report = detector.analyze(history, test_target());
  EXPECT_GT(report.suspicion_threshold, 0.0);
  EXPECT_GT(report.mean_hsdirs, 100.0);
  EXPECT_EQ(report.snapshots,
            static_cast<std::int64_t>(history.snapshots.size()));
}

TEST(TrackingDetectorTest, EmptyHistory) {
  TrackingDetector detector;
  const auto report = detector.analyze(HsDirHistory{}, test_target());
  EXPECT_EQ(report.snapshots, 0);
  EXPECT_TRUE(report.suspicious.empty());
}

// ---------------------------------------------------------------------
// Silk Road study (the paper's Sec. VII case, end to end)
// ---------------------------------------------------------------------

TEST(SilkroadStudyTest, ReproducesThreeTrackingEpisodes) {
  const auto study = run_silkroad_study(77);
  // Campaign clusters by ground truth.
  std::set<std::string> flagged;
  for (const auto& s : study.report.suspicious)
    if (!s.truth_campaign.empty()) flagged.insert(s.truth_campaign);
  EXPECT_TRUE(flagged.count("uniluxprobe"));  // the authors' own relays
  EXPECT_TRUE(flagged.count("trawlnode"));    // May 2013 campaign
  EXPECT_TRUE(flagged.count("augseizure"));   // 31 Aug full takeover
  // The takeover of all 6 slots happened at least once.
  EXPECT_GE(study.report.full_takeover_periods, 1);
}

TEST(SilkroadStudyTest, YearOneHasNoTrackingCampaign) {
  // The paper: "no clear indication of tracking" in year one — but one
  // strange server obtained the HSDir flag exactly when Silk Road would
  // choose it. Our detector may flag that lurker individually, yet no
  // year-one *campaign cluster* (>= 2 name-sharing servers) exists.
  const auto study = run_silkroad_study(78);
  ASSERT_EQ(study.yearly.size(), 3u);
  for (const auto& s : study.yearly[0].suspicious)
    EXPECT_TRUE(s.truth_campaign.empty() || s.truth_campaign == "oddserver")
        << s.name;
  for (const auto& cluster : study.yearly[0].clusters) {
    for (const auto server : cluster.servers)
      EXPECT_TRUE(study.history.server(server).truth_campaign.empty() ||
                  study.history.server(server).truth_campaign == "oddserver");
  }
  EXPECT_EQ(study.yearly[0].full_takeover_periods, 0);
}

TEST(SilkroadStudyTest, MayCampaignHasExtremeRatios) {
  const auto study = run_silkroad_study(79);
  double may_ratio = 0.0, own_ratio = 0.0;
  for (const auto& s : study.report.suspicious) {
    if (s.truth_campaign == "trawlnode")
      may_ratio = std::max(may_ratio, s.stats.max_ratio);
    if (s.truth_campaign == "uniluxprobe")
      own_ratio = std::max(own_ratio, s.stats.max_ratio);
  }
  // Paper: the May set was "the only responsible HSDirs that cross a
  // ratio of 10k"; the authors' own relays crossed 100.
  EXPECT_GT(may_ratio, 10000.0);
  EXPECT_GT(own_ratio, 100.0);
  EXPECT_GT(may_ratio, own_ratio);
}

TEST(SilkroadStudyTest, CampaignServersSwitchFingerprints) {
  const auto study = run_silkroad_study(80);
  // At least one server of the May campaign shows observable fingerprint
  // switching (a member seized only one period has nothing to compare).
  int switching = 0;
  for (const auto& s : study.report.suspicious) {
    if (s.truth_campaign == "trawlnode" &&
        (s.flags.switched_before_responsible ||
         s.stats.fingerprint_switches > 0))
      ++switching;
  }
  EXPECT_GE(switching, 1);
}

// ---------------------------------------------------------------------
// history_from_archive adapter (full World integration)
// ---------------------------------------------------------------------

TEST(HistoryFromArchiveTest, AdaptsWorldArchive) {
  sim::WorldConfig wc;
  wc.seed = 81;
  wc.honest_relays = 100;
  sim::World world(wc);
  world.run_hours(72);
  const auto history = history_from_archive(world.archive(), 24);
  EXPECT_GE(history.snapshots.size(), 3u);
  EXPECT_GT(history.servers.size(), 50u);
  // Every snapshot entry references a valid server.
  for (const auto& snap : history.snapshots)
    for (const auto& e : snap.entries())
      EXPECT_LT(e.server, history.servers.size());
}

TEST(HistoryFromArchiveTest, DetectorRunsOnWorldHistory) {
  sim::WorldConfig wc;
  wc.seed = 82;
  wc.honest_relays = 100;
  sim::World world(wc);
  const auto index = world.add_service();
  world.run_hours(48);
  const auto history = history_from_archive(world.archive(), 24);
  TrackingDetector detector;
  const auto report = detector.analyze(
      history, world.service(index).permanent_id());
  EXPECT_GT(report.snapshots, 0);
  // Nobody is tracking this service in an honest world: no relay sits at
  // a ground-key distance from the descriptor id. (The binomial rule
  // *can* fire on a 3-snapshot history — mu+3sigma is below 3 — which is
  // exactly the paper's caveat about short windows.)
  for (const auto& s : report.suspicious)
    EXPECT_LT(s.stats.max_ratio, 10000.0);
}

}  // namespace
}  // namespace torsim::trackdet

namespace torsim::trackdet {
namespace {

// ---------------------------------------------------------------------
// lurker campaigns (the paper's year-one "strange server")
// ---------------------------------------------------------------------

TEST(HistorySimulatorTest, LurkerOnlyAppearsWhenResponsible) {
  HistoryConfig config;
  config.seed = 20;
  config.start = util::make_utc(2011, 3, 1);
  config.end = util::make_utc(2011, 6, 1);
  CampaignSpec spec;
  spec.name = "strange";
  spec.from = util::make_utc(2011, 3, 10);
  spec.to = util::make_utc(2011, 5, 20);
  spec.servers = 1;
  spec.skip_probability = 0.95;  // surfaces only a handful of times
  spec.ring_fraction = 1e-7;
  spec.always_listed = false;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  // The lurker is in the ring on only a few days, and on every one of
  // those days it is responsible for the target.
  int listed_days = 0, responsible_days = 0;
  for (const auto& snap : history.snapshots) {
    bool listed = false;
    for (const auto& e : snap.entries())
      listed |= history.server(e.server).truth_campaign == "strange";
    if (!listed) continue;
    ++listed_days;
    const auto period = crypto::time_period(snap.time(), test_target());
    for (std::uint8_t replica = 0; replica < 2; ++replica) {
      const auto id = crypto::descriptor_id(test_target(), period, replica);
      for (const auto* e : snap.responsible(id))
        if (history.server(e->server).truth_campaign == "strange") {
          ++responsible_days;
          break;
        }
    }
  }
  EXPECT_GT(listed_days, 0);
  EXPECT_LT(listed_days, 15);
  EXPECT_GE(responsible_days, listed_days);  // responsible whenever listed
}

TEST(HistorySimulatorTest, AlwaysListedCampaignStaysInRingOnSkipDays) {
  HistoryConfig config;
  config.seed = 21;
  config.start = util::make_utc(2013, 5, 1);
  config.end = util::make_utc(2013, 6, 10);
  CampaignSpec spec;
  spec.name = "persistent";
  spec.from = util::make_utc(2013, 5, 5);
  spec.to = util::make_utc(2013, 6, 5);
  spec.servers = 3;
  spec.skip_probability = 0.5;
  spec.ring_fraction = 1e-8;
  spec.always_listed = true;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  int listed_days = 0;
  bool first_active_seen = false;
  for (const auto& snap : history.snapshots) {
    if (snap.time() < spec.from || snap.time() >= spec.to) continue;
    int present = 0;
    for (const auto& e : snap.entries())
      if (history.server(e.server).truth_campaign == "persistent") ++present;
    if (present > 0) {
      first_active_seen = true;
      ++listed_days;
    }
    // After the first active day, the fleet stays listed even on skips.
    if (first_active_seen) {
      EXPECT_GT(present, 0);
    }
  }
  EXPECT_GT(listed_days, 20);
}

TEST(TrackingDetectorTest, LurkerFlaggedByImmediateResponsibility) {
  HistoryConfig config;
  config.seed = 22;
  config.start = util::make_utc(2011, 3, 1);
  config.end = util::make_utc(2011, 9, 1);
  CampaignSpec spec;
  spec.name = "strange";
  spec.from = util::make_utc(2011, 3, 10);
  spec.to = util::make_utc(2011, 8, 20);
  spec.servers = 1;
  spec.skip_probability = 0.93;
  spec.ring_fraction = 1e-7;
  spec.always_listed = false;
  const auto history =
      HistorySimulator(config).simulate(test_target(), {spec});

  TrackingDetector detector;
  const auto report = detector.analyze(history, test_target());
  bool lurker_flagged = false;
  for (const auto& s : report.suspicious)
    if (s.truth_campaign == "strange") {
      lurker_flagged = true;
      // It gets the HSDir flag exactly when the target would choose it.
      EXPECT_TRUE(s.flags.immediate_responsibility || s.flags.positioned);
    }
  EXPECT_TRUE(lurker_flagged);
}

}  // namespace
}  // namespace torsim::trackdet
