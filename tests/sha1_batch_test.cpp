// Differential suite for the multi-lane batched SHA-1
// (crypto/sha1_batch.hpp): every lane result must match the scalar
// crypto::Sha1 byte-for-byte. The scalar implementation is the oracle —
// it is untouched by the batch rewrite and validated against the FIPS /
// RFC vectors in crypto_test.cpp — so agreement here certifies the
// independent lane kernel end to end (padding, length encoding,
// midstate forking, lane compaction at mixed message lengths).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha1_batch.hpp"
#include "util/memo.hpp"
#include "util/rng.hpp"

namespace torsim::crypto {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes random_bytes(util::Rng& rng, std::size_t n) {
  Bytes out(n);
  if (n > 0) rng.fill_bytes(out.data(), n);
  return out;
}

Sha1Digest scalar_sha1(const Bytes& prefix, const Bytes& suffix) {
  Sha1 hasher;
  hasher.update(std::span<const std::uint8_t>(prefix));
  hasher.update(std::span<const std::uint8_t>(suffix));
  return hasher.finalize();
}

std::vector<std::span<const std::uint8_t>> as_spans(
    const std::vector<Bytes>& messages) {
  std::vector<std::span<const std::uint8_t>> spans;
  spans.reserve(messages.size());
  for (const Bytes& m : messages) spans.emplace_back(m);
  return spans;
}

// The padding-sensitive lengths: 0 (empty), 55/56 (last byte that fits
// the length in block one / first that overflows into block two), 63/64/
// 65 (block boundary), 119/120 (the same boundary one block later).
const std::size_t kBoundaryLengths[] = {0, 55, 56, 63, 64, 65, 119, 120};

TEST(Sha1BatchTest, BlockBoundaryLengthsMatchScalar) {
  util::Rng rng(401);
  for (const std::size_t len : kBoundaryLengths) {
    const Bytes message = random_bytes(rng, len);
    const std::span<const std::uint8_t> span(message);
    std::vector<std::span<const std::uint8_t>> messages = {span};
    Sha1Digest out{};
    sha1_batch(messages, std::span<Sha1Digest>(&out, 1));
    EXPECT_EQ(out, scalar_sha1(message, {})) << "length " << len;
  }
}

TEST(Sha1BatchTest, MixedBoundaryLengthsInOneBatch) {
  // All eight boundary lengths ride one batch, exercising lane
  // compaction: short lanes drop out while long lanes keep compressing.
  util::Rng rng(402);
  std::vector<Bytes> messages;
  for (const std::size_t len : kBoundaryLengths)
    messages.push_back(random_bytes(rng, len));
  const std::vector<Sha1Digest> got = sha1_batch(as_spans(messages));
  ASSERT_EQ(got.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i)
    EXPECT_EQ(got[i], scalar_sha1(messages[i], {})) << "message " << i;
}

TEST(Sha1BatchTest, MidstateBoundaryPrefixes) {
  // The absorbed prefix can leave any number of buffered bytes; the
  // finish pass must splice buffered + suffix + padding correctly at
  // every offset class.
  util::Rng rng(403);
  for (const std::size_t prefix_len :
       {std::size_t{0}, std::size_t{1}, std::size_t{10}, std::size_t{55},
        std::size_t{56}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{127}, std::size_t{128}}) {
    const Bytes prefix = random_bytes(rng, prefix_len);
    Sha1Midstate midstate;
    midstate.absorb(std::span<const std::uint8_t>(prefix));
    EXPECT_EQ(midstate.absorbed_bytes(), prefix_len);

    std::vector<Bytes> suffixes;
    for (const std::size_t len : kBoundaryLengths)
      suffixes.push_back(random_bytes(rng, len));
    std::vector<Sha1Digest> got(suffixes.size());
    sha1_finish_lanes(midstate, as_spans(suffixes), got);
    for (std::size_t i = 0; i < suffixes.size(); ++i)
      EXPECT_EQ(got[i], scalar_sha1(prefix, suffixes[i]))
          << "prefix " << prefix_len << " suffix " << suffixes[i].size();
  }
}

TEST(Sha1BatchTest, MidstateForkPurity) {
  // Finishing never mutates the midstate: repeated finishes — with
  // different suffix sets in between — keep producing the digests a
  // fresh scalar hash of prefix || suffix produces.
  util::Rng rng(404);
  const Bytes prefix = random_bytes(rng, 37);
  Sha1Midstate midstate;
  midstate.absorb(std::span<const std::uint8_t>(prefix));

  const std::vector<Bytes> first = {random_bytes(rng, 5),
                                    random_bytes(rng, 70)};
  const std::vector<Bytes> second = {random_bytes(rng, 20)};
  std::vector<Sha1Digest> round1(first.size());
  sha1_finish_lanes(midstate, as_spans(first), round1);
  std::vector<Sha1Digest> interleaved(second.size());
  sha1_finish_lanes(midstate, as_spans(second), interleaved);
  std::vector<Sha1Digest> round2(first.size());
  sha1_finish_lanes(midstate, as_spans(first), round2);

  EXPECT_EQ(round1, round2);
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(round1[i], scalar_sha1(prefix, first[i]));
  EXPECT_EQ(interleaved[0], scalar_sha1(prefix, second[0]));
}

TEST(Sha1BatchTest, IncrementalAbsorbMatchesOneShot) {
  // Chunked absorption (the streaming Sha1::update contract) must land
  // in the same midstate as one absorb of the concatenation.
  util::Rng rng(405);
  const Bytes prefix = random_bytes(rng, 200);
  Sha1Midstate chunked;
  std::size_t offset = 0;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{62},
                                  std::size_t{64}, std::size_t{73}}) {
    chunked.absorb(
        std::span<const std::uint8_t>(prefix.data() + offset, chunk));
    offset += chunk;
  }
  ASSERT_EQ(offset, prefix.size());
  Sha1Midstate oneshot;
  oneshot.absorb(std::span<const std::uint8_t>(prefix));

  const std::vector<Bytes> suffixes = {random_bytes(rng, 11)};
  std::vector<Sha1Digest> a(1), b(1);
  sha1_finish_lanes(chunked, as_spans(suffixes), a);
  sha1_finish_lanes(oneshot, as_spans(suffixes), b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], scalar_sha1(prefix, suffixes[0]));
}

TEST(Sha1BatchTest, RandomizedSchedulesMatchScalar) {
  // Randomized message schedules, batch sizes 0 through several times
  // kSha1Lanes (partial last groups included), lengths spanning 0..200.
  util::Rng rng(406);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t count = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(3 * kSha1Lanes + 1)));
    std::vector<Bytes> messages;
    for (std::size_t i = 0; i < count; ++i)
      messages.push_back(random_bytes(
          rng, static_cast<std::size_t>(rng.uniform_int(0, 200))));
    const std::vector<Sha1Digest> got = sha1_batch(as_spans(messages));
    ASSERT_EQ(got.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(got[i], scalar_sha1(messages[i], {}))
          << "trial " << trial << " message " << i;
  }
}

TEST(Sha1BatchTest, RandomizedMidstateSchedulesMatchScalar) {
  util::Rng rng(407);
  for (int trial = 0; trial < 30; ++trial) {
    const Bytes prefix = random_bytes(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 130)));
    Sha1Midstate midstate;
    midstate.absorb(std::span<const std::uint8_t>(prefix));
    const std::size_t count = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(2 * kSha1Lanes)));
    std::vector<Bytes> suffixes;
    for (std::size_t i = 0; i < count; ++i)
      suffixes.push_back(random_bytes(
          rng, static_cast<std::size_t>(rng.uniform_int(0, 150))));
    std::vector<Sha1Digest> got(count);
    sha1_finish_lanes(midstate, as_spans(suffixes), got);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(got[i], scalar_sha1(prefix, suffixes[i]))
          << "trial " << trial << " suffix " << i;
  }
}

TEST(Sha1BatchTest, DeriveIdsLaneWiringMatchesScalarOracle) {
  // The production wiring: descriptor_ids_for_period(s) on the uncached
  // path must reproduce the kept scalar oracle exactly, cookie or not.
  const util::MemoEnabledGuard cache_guard(false);
  util::Rng rng(408);
  const Bytes cookie = random_bytes(rng, 16);
  for (int trial = 0; trial < 20; ++trial) {
    PermanentId pid{};
    rng.fill_bytes(pid.data(), pid.size());
    const auto base =
        static_cast<std::uint32_t>(rng.uniform_int(10000, 20000));
    std::vector<std::uint32_t> periods;
    for (std::uint32_t p = 0; p < 5; ++p) periods.push_back(base + p);

    for (const Bytes& c : {Bytes{}, cookie}) {
      const std::span<const std::uint8_t> cspan(c);
      const std::vector<DescriptorId> batched =
          descriptor_ids_for_periods(pid, periods, cspan);
      ASSERT_EQ(batched.size(), periods.size() * kNumReplicas);
      for (std::size_t p = 0; p < periods.size(); ++p) {
        const auto single =
            descriptor_ids_for_period(pid, periods[p], cspan);
        const auto oracle =
            descriptor_ids_for_period_scalar(pid, periods[p], cspan);
        for (std::size_t r = 0; r < static_cast<std::size_t>(kNumReplicas);
             ++r) {
          EXPECT_EQ(batched[p * kNumReplicas + r], oracle[r]);
          EXPECT_EQ(single[r], oracle[r]);
        }
      }
    }
  }
}

TEST(Sha1BatchTest, DeriveIdsCachedPathMatchesColdPath) {
  // Memo on vs off must be byte-identical (the memo is a pure value
  // table; the lane kernel only replaces the miss computation).
  util::Rng rng(409);
  PermanentId pid{};
  rng.fill_bytes(pid.data(), pid.size());
  std::vector<std::uint32_t> periods = {15000, 15001, 15002};
  std::vector<DescriptorId> cold, warm;
  {
    const util::MemoEnabledGuard off(false);
    cold = descriptor_ids_for_periods(pid, periods);
  }
  {
    const util::MemoEnabledGuard on(true);
    warm = descriptor_ids_for_periods(pid, periods);
    // Twice: the second call is served from the memo shards.
    EXPECT_EQ(descriptor_ids_for_periods(pid, periods), warm);
  }
  EXPECT_EQ(cold, warm);
}

}  // namespace
}  // namespace torsim::crypto
