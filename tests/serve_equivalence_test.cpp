// The serve equivalence gate (`ctest -L serve`): the same request mix
// answered through the full daemon path — unix socket, framing,
// admission control, batching — must be byte-identical to the serial
// in-process reference, across thread counts, memo cache on/off,
// admission pressure, and connection chaos. The default mix is also
// pinned to committed goldens under tests/testdata/serve/; regenerate
// deliberately with TORSIM_SERVE_REGEN=1 (docs/serving.md).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "serve/loadgen.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/memo.hpp"

namespace {

using namespace torsim;
using serve::LoadConfig;
using serve::LoadResult;
using serve::Request;
using serve::Response;
using serve::ServerConfig;
using serve::SessionConfig;
using serve::Status;
using serve::WorldSession;

const std::string kGoldenDir = TORSIM_SERVE_TESTDATA_DIR;

SessionConfig toy_config(int threads, obs::MetricsRegistry* metrics) {
  SessionConfig config;
  config.world.seed = 20130204;
  config.world.honest_relays = 60;
  config.world.metrics = metrics;
  config.services = 6;
  config.warmup_hours = 2;
  config.threads = threads;
  config.metrics = metrics;
  return config;
}

/// The canonical mix the gate pins: 24 requests over 6 services from 3
/// clients, seeded with the repo-wide default seed.
std::vector<Request> canonical_mix() {
  return serve::default_request_mix(20130204, 24, 6, 3);
}

std::string render_all(const std::vector<Response>& responses) {
  std::string out;
  for (const Response& response : responses)
    out += serve::render_response(response);
  return out;
}

struct RunBytes {
  std::string responses;
  std::string metrics_json;
};

/// Serial in-process reference: one request at a time against a fresh
/// warmed session.
RunBytes run_direct(const std::vector<Request>& mix, int threads) {
  obs::MetricsRegistry metrics;
  WorldSession session(toy_config(threads, &metrics));
  std::vector<Response> responses;
  responses.reserve(mix.size());
  for (const Request& request : mix)
    responses.push_back(session.execute(request));
  return {render_all(responses), metrics.to_json()};
}

/// Full daemon path: server on a unix socket in a background thread,
/// loadgen as the client fleet, shutdown request to end the loop.
RunBytes run_via_socket(const std::string& tag, int session_threads,
                        ServerConfig edge, LoadConfig load) {
  obs::MetricsRegistry metrics;
  WorldSession session(toy_config(session_threads, &metrics));
  edge.socket_path = "/tmp/torsim_serve_eq_" + tag + "_" +
                     std::to_string(::getpid()) + ".sock";
  serve::Server server(session, edge);
  server.start();
  std::thread loop([&] { server.run(); });
  load.socket_path = edge.socket_path;
  load.shutdown = true;  // ends the daemon loop after the run
  LoadResult result;
  try {
    result = serve::run_load(load);
  } catch (...) {
    server.stop();
    loop.join();
    std::remove(edge.socket_path.c_str());
    throw;
  }
  loop.join();
  std::remove(edge.socket_path.c_str());
  return {render_all(result.responses), metrics.to_json()};
}

/// The serial reference for a socket run must execute the identical
/// request stream, including the trailing shutdown request loadgen
/// appends.
std::vector<Request> with_shutdown(std::vector<Request> mix) {
  Request request;
  request.id = mix.size() + 1;
  request.kind = serve::QueryKind::kShutdown;
  mix.push_back(request);
  return mix;
}

void check_or_regen(const std::string& name, const std::string& actual) {
  const std::string path = kGoldenDir + "/" + name;
  if (std::getenv("TORSIM_SERVE_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — regenerate with TORSIM_SERVE_REGEN=1 "
                            "(docs/serving.md)";
  const std::string expected{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(actual, expected) << "golden " << name << " diverged";
}

TEST(ServeEquivalence, DefaultMixMatchesGoldenAcrossThreadsAndCache) {
  const std::vector<Request> mix = canonical_mix();
  bool first = true;
  for (const int threads : {1, 4, 8}) {
    for (const bool cache : {true, false}) {
      util::MemoEnabledGuard guard(cache);
      const RunBytes bytes = run_direct(mix, threads);
      if (first) {
        check_or_regen("default_mix.responses.txt", bytes.responses);
        check_or_regen("default_mix.metrics.json", bytes.metrics_json);
        first = false;
      } else {
        // Later configurations are compared in-process (one golden on
        // disk, every configuration pinned to it).
        const RunBytes reference = run_direct(mix, 1);
        EXPECT_EQ(bytes.responses, reference.responses)
            << "threads=" << threads << " cache=" << (cache ? "on" : "off");
        EXPECT_EQ(bytes.metrics_json, reference.metrics_json)
            << "threads=" << threads << " cache=" << (cache ? "on" : "off");
      }
    }
  }
}

TEST(ServeEquivalence, SocketClosedLoopMatchesSerialReference) {
  const std::vector<Request> mix = canonical_mix();
  const RunBytes reference = run_direct(with_shutdown(mix), 1);
  for (const int threads : {1, 4, 8}) {
    LoadConfig load;
    load.clients = 3;
    load.requests = 24;
    load.services = 6;
    load.seed = 20130204;
    const RunBytes bytes =
        run_via_socket("closed_t" + std::to_string(threads), threads,
                       ServerConfig{}, load);
    EXPECT_EQ(bytes.responses, reference.responses)
        << "threads=" << threads;
    EXPECT_EQ(bytes.metrics_json, reference.metrics_json)
        << "threads=" << threads;
  }
}

TEST(ServeEquivalence, SocketOpenLoopMatchesSerialReference) {
  const std::vector<Request> mix = canonical_mix();
  const RunBytes reference = run_direct(with_shutdown(mix), 1);
  LoadConfig load;
  load.clients = 3;
  load.requests = 24;
  load.services = 6;
  load.seed = 20130204;
  load.open_loop = true;
  const RunBytes bytes =
      run_via_socket("open", 4, ServerConfig{}, load);
  EXPECT_EQ(bytes.responses, reference.responses);
  EXPECT_EQ(bytes.metrics_json, reference.metrics_json);
}

TEST(ServeEquivalence, AdmissionPressureStaysByteIdentical) {
  // A one-request batch ceiling and a two-slot queue force retry-after
  // rejections under six concurrent clients; the retry loop must make
  // the final answers indistinguishable from the unpressured run.
  const std::vector<Request> mix = canonical_mix();
  const RunBytes reference = run_direct(with_shutdown(mix), 1);
  ServerConfig edge;
  edge.max_batch = 1;
  edge.queue_capacity = 2;
  LoadConfig load;
  load.clients = 6;
  load.requests = 24;
  load.services = 6;
  load.seed = 20130204;
  const RunBytes bytes = run_via_socket("pressure", 2, edge, load);
  EXPECT_EQ(bytes.responses, reference.responses);
  EXPECT_EQ(bytes.metrics_json, reference.metrics_json);
}

TEST(ServeEquivalence, DropAndDelayChaosStaysByteIdentical) {
  // Dropped connections and held-back responses only cost retries and
  // reconnects; the answers (and the deterministic session metrics)
  // must not move.
  const std::vector<Request> mix = canonical_mix();
  const RunBytes reference = run_direct(with_shutdown(mix), 1);
  ServerConfig edge;
  edge.chaos = fault::FaultPlan::parse("drop=0.3,timeout=0.3");
  LoadConfig load;
  load.clients = 4;
  load.requests = 24;
  load.services = 6;
  load.seed = 20130204;
  const RunBytes bytes = run_via_socket("chaos_drop", 4, edge, load);
  EXPECT_EQ(bytes.responses, reference.responses);
  EXPECT_EQ(bytes.metrics_json, reference.metrics_json);
}

TEST(ServeEquivalence, CorruptionChaosNeverHangsOrDropsRequests) {
  // Garbled response bytes make clients tear down and replay; a short
  // receive timeout keeps mismatched-id waits cheap. Payload equality
  // is NOT asserted — an unlucky flip can land inside a data line and
  // parse fine (the protocol carries no checksum; docs/serving.md) —
  // but every request must still get a response with its own id.
  ServerConfig edge;
  edge.chaos = fault::FaultPlan::parse("corrupt=0.4");
  LoadConfig load;
  load.clients = 3;
  load.requests = 12;
  load.services = 6;
  load.seed = 20130204;
  load.timeout_millis = 500;
  obs::MetricsRegistry metrics;
  WorldSession session(toy_config(2, &metrics));
  edge.socket_path = "/tmp/torsim_serve_eq_corrupt_" +
                     std::to_string(::getpid()) + ".sock";
  serve::Server server(session, edge);
  server.start();
  std::thread loop([&] { server.run(); });
  load.socket_path = edge.socket_path;
  // No shutdown request here: a garbled shutdown acknowledgement would
  // strand the client retrying against an already-exited daemon. The
  // test stops the loop explicitly instead.
  const LoadResult result = serve::run_load(load);
  server.stop();
  loop.join();
  std::remove(edge.socket_path.c_str());
  ASSERT_EQ(result.responses.size(), result.requests.size());
  for (std::size_t i = 0; i < result.requests.size(); ++i)
    EXPECT_EQ(result.responses[i].id, result.requests[i].id) << i;
}

}  // namespace
