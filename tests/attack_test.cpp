#include <gtest/gtest.h>

#include <cmath>

#include "attack/deanonymizer.hpp"
#include "attack/grinding.hpp"
#include "attack/harvester.hpp"
#include "attack/signature.hpp"
#include "util/strings.hpp"

namespace torsim::attack {
namespace {

// ---------------------------------------------------------------------
// traffic signature
// ---------------------------------------------------------------------

TEST(SignatureTest, DetectsOwnInjection) {
  const auto sig = TrafficSignature::standard();
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    CellTrace trace = background_trace(rng, 30);
    sig.inject(trace);
    EXPECT_TRUE(sig.detect(trace));
  }
}

TEST(SignatureTest, DetectsInjectionMidStream) {
  const auto sig = TrafficSignature::standard();
  util::Rng rng(2);
  CellTrace trace = background_trace(rng, 10);
  sig.inject(trace);
  const CellTrace tail = background_trace(rng, 10);
  trace.insert(trace.end(), tail.begin(), tail.end());
  EXPECT_TRUE(sig.detect(trace));
}

TEST(SignatureTest, LowFalsePositiveRateOnBackground) {
  const auto sig = TrafficSignature::standard();
  util::Rng rng(3);
  int false_positives = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i)
    if (sig.detect(background_trace(rng, 50))) ++false_positives;
  EXPECT_LT(false_positives, trials / 100);  // < 1%
}

TEST(SignatureTest, ShortTraceNeverMatches) {
  const auto sig = TrafficSignature::standard();
  EXPECT_FALSE(sig.detect({1, 2}));
  EXPECT_FALSE(sig.detect({}));
}

TEST(SignatureTest, JitterToleranceIsOneSided) {
  TrafficSignature sig({5, 0, 5});
  EXPECT_TRUE(sig.detect({5, 0, 5}, 0));
  EXPECT_TRUE(sig.detect({6, 1, 5}, 1));   // extra riding cells ok
  EXPECT_FALSE(sig.detect({4, 0, 5}, 1));  // cells cannot vanish
  EXPECT_FALSE(sig.detect({8, 0, 5}, 1));  // too much extra
}

TEST(SignatureTest, EmptyPatternRejected) {
  EXPECT_THROW(TrafficSignature({}), std::invalid_argument);
}

// ---------------------------------------------------------------------
// key grinding
// ---------------------------------------------------------------------

TEST(GrindingTest, GrindsKeyIntoArc) {
  util::Rng rng(4);
  crypto::Sha1Digest target;
  rng.fill_bytes(target.data(), target.size());
  // 1/1000 of the ring: expected ~1000 attempts.
  const auto result = grind_key_after(target, 1e-3, rng, 200000);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->attempts, 0u);
  const double ring = std::ldexp(1.0, 160);
  EXPECT_LE(result->distance, 1e-3 * ring);
  EXPECT_GT(result->distance, 0.0);
  EXPECT_DOUBLE_EQ(
      crypto::ring_distance(target, result->key.fingerprint()),
      result->distance);
}

TEST(GrindingTest, TighterArcTakesMoreAttempts) {
  util::Rng rng(5);
  crypto::Sha1Digest target;
  rng.fill_bytes(target.data(), target.size());
  std::uint64_t loose_total = 0, tight_total = 0;
  for (int i = 0; i < 5; ++i) {
    loose_total += grind_key_after(target, 1e-2, rng, 1000000)->attempts;
    tight_total += grind_key_after(target, 1e-4, rng, 1000000)->attempts;
  }
  EXPECT_GT(tight_total, loose_total);
}

TEST(GrindingTest, GivesUpAfterMaxAttempts) {
  util::Rng rng(6);
  crypto::Sha1Digest target{};
  EXPECT_FALSE(grind_key_after(target, 1e-12, rng, 100).has_value());
}

TEST(GrindingTest, OnionPrefixGrinding) {
  util::Rng rng(7);
  const auto result = grind_onion_prefix("ab", rng, 1000000);
  ASSERT_TRUE(result.has_value());
  const auto onion = crypto::onion_address(
      crypto::permanent_id_from_fingerprint(result->key.fingerprint()));
  EXPECT_TRUE(util::starts_with(onion, "ab")) << onion;
}

// ---------------------------------------------------------------------
// shadow harvester (small world end-to-end)
// ---------------------------------------------------------------------

sim::WorldConfig harvest_world_config(std::uint64_t seed) {
  sim::WorldConfig config;
  config.seed = seed;
  config.honest_relays = 150;
  return config;
}

TEST(HarvesterTest, CollectsMostPublishedOnions) {
  sim::World world(harvest_world_config(10));
  // 40 hidden services.
  std::set<std::string> expected;
  for (int i = 0; i < 40; ++i) {
    const auto index = world.add_service();
    expected.insert(world.service(index).onion_address());
  }

  HarvesterConfig config;
  config.num_ips = 10;
  config.relays_per_ip = 12;
  ShadowHarvester harvester(config);
  harvester.deploy(world);
  const auto report = harvester.run(world, 24);

  EXPECT_EQ(report.relays_deployed, 120);
  EXPECT_GT(report.positions_used, 40);
  // Against ~75 honest HSDirs, 120 attacker positions over 24h should
  // recover the great majority of the service population.
  std::size_t recovered = 0;
  for (const auto& onion : report.onions)
    if (expected.count(onion)) ++recovered;
  EXPECT_GT(recovered, expected.size() * 6 / 10);
  EXPECT_GT(report.descriptors_collected, 0);
}

TEST(HarvesterTest, OwnsItsRelays) {
  sim::World world(harvest_world_config(11));
  ShadowHarvester harvester(HarvesterConfig{.num_ips = 2,
                                            .relays_per_ip = 4,
                                            .bandwidth_kbps = 5000});
  harvester.deploy(world);
  EXPECT_EQ(harvester.relay_ids().size(), 8u);
  for (const auto id : harvester.relay_ids()) EXPECT_TRUE(harvester.owns(id));
  EXPECT_FALSE(harvester.owns(0));  // an honest relay
}

TEST(HarvesterTest, RespectsTwoPerIpRule) {
  sim::World world(harvest_world_config(12));
  ShadowHarvester harvester(HarvesterConfig{.num_ips = 3,
                                            .relays_per_ip = 8,
                                            .bandwidth_kbps = 5000});
  harvester.deploy(world);
  world.step_hour();
  // Only 2 relays per attacker IP may appear in any consensus.
  std::map<std::uint32_t, int> per_ip;
  for (const auto id : harvester.relay_ids()) {
    if (world.consensus().find_relay(id) != nullptr)
      ++per_ip[world.registry().get(id).config().address.value()];
  }
  for (const auto& [ip, count] : per_ip) EXPECT_LE(count, 2);
}

TEST(HarvesterTest, RequiresDeployBeforeRun) {
  sim::World world(harvest_world_config(13));
  ShadowHarvester harvester;
  EXPECT_THROW(harvester.run(world, 1), std::logic_error);
}

TEST(HarvesterTest, RejectsBadConfig) {
  EXPECT_THROW(ShadowHarvester(HarvesterConfig{.num_ips = 0,
                                               .relays_per_ip = 4,
                                               .bandwidth_kbps = 1}),
               std::invalid_argument);
  EXPECT_THROW(ShadowHarvester(HarvesterConfig{.num_ips = 1,
                                               .relays_per_ip = 1,
                                               .bandwidth_kbps = 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// client deanonymisation (Sec. VI, small world end-to-end)
// ---------------------------------------------------------------------

TEST(DeanonymizerTest, EndToEndRecoversClientAddresses) {
  sim::WorldConfig wc;
  wc.seed = 20;
  wc.honest_relays = 150;
  sim::World world(wc);
  const auto target_index = world.add_service();

  DeanonymizerConfig config;
  config.guard_relays = 30;  // large share of guard capacity
  ClientDeanonymizer attacker(config);
  attacker.deploy_guards(world);
  EXPECT_GT(attacker.position_hsdirs(world, world.service(target_index)), 0);
  // Re-publish so the attacker's freshly positioned HSDirs hold the
  // descriptor.
  world.step_hour();

  // A fleet of clients repeatedly fetches the target's descriptor.
  std::vector<hs::Client> clients;
  for (int i = 0; i < 60; ++i)
    clients.emplace_back(util::Ipv4::random_public(world.rng()),
                         9000 + static_cast<std::uint64_t>(i));
  util::Rng trace_rng(21);
  const auto onion = world.service(target_index).onion_address();
  for (auto& client : clients) {
    client.maintain(world.consensus(), world.now());
    for (int round = 0; round < 3; ++round) {
      const auto outcome = client.fetch_descriptor(
          onion, world.consensus(), world.directories(), world.now());
      attacker.observe_fetch(outcome, trace_rng);
    }
  }

  const auto& report = attacker.report();
  EXPECT_EQ(report.fetches_observed, 180);
  EXPECT_GT(report.signatures_injected, 0);
  EXPECT_GT(report.deanonymized, 0);
  EXPECT_FALSE(report.client_addresses.empty());
  // Deanonymisation requires both vantage points.
  EXPECT_LE(report.deanonymized, report.signatures_injected);
  EXPECT_LE(report.deanonymized, report.through_our_guard);
}

TEST(DeanonymizerTest, SuccessRateTracksGuardShare) {
  // With no attacker guards, nothing can be deanonymised even though
  // signatures are injected.
  sim::WorldConfig wc;
  wc.seed = 22;
  wc.honest_relays = 120;
  sim::World world(wc);
  const auto target_index = world.add_service();

  DeanonymizerConfig config;
  config.guard_relays = 0;
  ClientDeanonymizer attacker(config);
  attacker.position_hsdirs(world, world.service(target_index));
  world.step_hour();

  hs::Client client(util::Ipv4(99, 1, 2, 3), 777);
  client.maintain(world.consensus(), world.now());
  util::Rng trace_rng(23);
  for (int i = 0; i < 50; ++i) {
    const auto outcome = client.fetch_descriptor(
        world.service(target_index).onion_address(), world.consensus(),
        world.directories(), world.now());
    attacker.observe_fetch(outcome, trace_rng);
  }
  EXPECT_GT(attacker.report().signatures_injected, 0);
  EXPECT_EQ(attacker.report().deanonymized, 0);
}

TEST(DeanonymizerTest, RepositionsAfterDescriptorRotation) {
  sim::WorldConfig wc;
  wc.seed = 24;
  wc.honest_relays = 120;
  sim::World world(wc);
  const auto target_index = world.add_service();

  ClientDeanonymizer attacker;
  const int first = attacker.position_hsdirs(world, world.service(target_index));
  EXPECT_GT(first, 0);
  // Same period: no repositioning.
  EXPECT_EQ(attacker.position_hsdirs(world, world.service(target_index)), 0);
  // Advance past the period boundary: fingerprints must be re-ground.
  world.run_hours(25);
  const int again =
      attacker.position_hsdirs(world, world.service(target_index));
  EXPECT_GT(again, 0);
  // The standing relays carry fingerprint-switch history — the very
  // signal Sec. VII's detector hunts for.
  bool switched = false;
  for (const auto id : attacker.hsdir_ids())
    switched |= world.registry().get(id).fingerprint_switches() > 0;
  EXPECT_TRUE(switched);
}

TEST(DeanonymizerTest, PositionedHsdirsAreResponsible) {
  sim::WorldConfig wc;
  wc.seed = 25;
  wc.honest_relays = 120;
  sim::World world(wc);
  const auto target_index = world.add_service();

  ClientDeanonymizer attacker;
  attacker.position_hsdirs(world, world.service(target_index));
  const auto ids =
      world.service(target_index).current_descriptor_ids(world.now());
  // For each replica, at least one responsible HSDir is the attacker's.
  int replicas_covered = 0;
  for (const auto& id : ids) {
    bool covered = false;
    for (const auto* e : world.consensus().responsible_hsdirs(id))
      for (const auto attacker_id : attacker.hsdir_ids())
        covered |= e->relay == attacker_id;
    if (covered) ++replicas_covered;
  }
  EXPECT_EQ(replicas_covered, 2);
}

}  // namespace
}  // namespace torsim::attack

namespace torsim::attack {
namespace {

// ---------------------------------------------------------------------
// service deanonymisation (the S&P'13 predecessor Sec. VI adapts)
// ---------------------------------------------------------------------

TEST(ServiceDeanonTest, RecoversOperatorAddress) {
  sim::WorldConfig wc;
  wc.seed = 30;
  wc.honest_relays = 200;
  sim::World world(wc);
  const auto target_index = world.add_service();
  hs::ServiceHost& target = world.service(target_index);
  target.set_address(util::Ipv4(203, 0, 113, 99));

  DeanonymizerConfig config;
  config.guard_relays = 40;  // large bandwidth share
  ClientDeanonymizer attacker(config);
  attacker.deploy_guards(world);
  attacker.position_hsdirs(world, target);

  // The service maintains guards and republishes daily; each upload is
  // an attack opportunity.
  util::Rng trace_rng(31);
  int deanon_days = 0;
  for (int day = 0; day < 10; ++day) {
    world.run_hours(24);
    attacker.position_hsdirs(world, target);
    target.maintain_guards(world.consensus(), world.rng(), world.now());
    target.maybe_publish(world.consensus(), world.directories(), world.rng(),
                         world.now(), /*force=*/true);
    for (const auto& record : target.last_publish_records()) {
      if (attacker.observe_publish(record, target.address(), trace_rng))
        ++deanon_days;
    }
  }

  const auto& report = attacker.report();
  EXPECT_GT(report.publishes_observed, 0);
  EXPECT_GT(report.service_deanonymized, 0);
  ASSERT_EQ(report.service_addresses.size(), 1u);
  EXPECT_EQ(*report.service_addresses.begin(),
            util::Ipv4(203, 0, 113, 99).value());
  EXPECT_GT(deanon_days, 0);
}

TEST(ServiceDeanonTest, GuardlessServiceNotDeanonymised) {
  // A service that never maintains guards publishes without a guard
  // hop; the attack has no vantage point at the first hop.
  sim::WorldConfig wc;
  wc.seed = 32;
  wc.honest_relays = 150;
  sim::World world(wc);
  const auto target_index = world.add_service();
  hs::ServiceHost& target = world.service(target_index);

  ClientDeanonymizer attacker;
  attacker.deploy_guards(world);
  attacker.position_hsdirs(world, target);
  world.step_hour();
  target.maybe_publish(world.consensus(), world.directories(), world.rng(),
                       world.now(), true);

  util::Rng trace_rng(33);
  for (const auto& record : target.last_publish_records()) {
    EXPECT_EQ(record.guard, relay::kInvalidRelayId);
    EXPECT_FALSE(
        attacker.observe_publish(record, target.address(), trace_rng));
  }
  EXPECT_EQ(attacker.report().service_deanonymized, 0);
}

TEST(ServiceDeanonTest, PublishRecordsMatchReceivers) {
  sim::WorldConfig wc;
  wc.seed = 34;
  wc.honest_relays = 150;
  sim::World world(wc);
  const auto index = world.add_service();
  hs::ServiceHost& host = world.service(index);
  host.maintain_guards(world.consensus(), world.rng(), world.now());
  const auto receivers = host.maybe_publish(
      world.consensus(), world.directories(), world.rng(), world.now(), true);
  ASSERT_EQ(host.last_publish_records().size(), receivers.size());
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    EXPECT_EQ(host.last_publish_records()[i].hsdir, receivers[i]);
    EXPECT_NE(host.last_publish_records()[i].guard, relay::kInvalidRelayId);
  }
}

}  // namespace
}  // namespace torsim::attack
