#include <gtest/gtest.h>

#include <set>

#include "hs/rendezvous.hpp"
#include "sim/world.hpp"

namespace torsim::hs {
namespace {

struct RendezvousFixture {
  sim::World world;
  std::size_t service_index;
  Client client{util::Ipv4(203, 0, 113, 9), 4242};

  explicit RendezvousFixture(std::uint64_t seed = 99)
      : world([&] {
          sim::WorldConfig config;
          config.seed = seed;
          config.honest_relays = 200;
          return config;
        }()) {
    service_index = world.add_service();
    world.service(service_index)
        .maintain_guards(world.consensus(), world.rng(), world.now());
    client.maintain(world.consensus(), world.now());
  }

  ServiceHost& service() { return world.service(service_index); }

  RendezvousOutcome connect() {
    return rendezvous_connect(client, service(), world.consensus(),
                              world.directories(), world.rng(), world.now());
  }
};

TEST(RendezvousTest, SuccessfulConnection) {
  RendezvousFixture fx;
  const auto outcome = fx.connect();
  ASSERT_TRUE(outcome.success) << to_string(outcome.failure);
  EXPECT_EQ(outcome.failure, RendezvousFailure::kNone);
  EXPECT_NE(outcome.client_guard, relay::kInvalidRelayId);
  EXPECT_NE(outcome.service_guard, relay::kInvalidRelayId);
  EXPECT_NE(outcome.intro_point, relay::kInvalidRelayId);
  EXPECT_NE(outcome.rendezvous_point, relay::kInvalidRelayId);
  EXPECT_NE(outcome.cookie, 0u);
  EXPECT_GE(outcome.setup_cells, 10);
}

TEST(RendezvousTest, GuardsFrontBothSides) {
  RendezvousFixture fx;
  const auto outcome = fx.connect();
  ASSERT_TRUE(outcome.success);
  // Both first hops carry the Guard flag in the consensus.
  for (const auto id : {outcome.client_guard, outcome.service_guard}) {
    const auto* entry = fx.world.consensus().find_relay(id);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(has_flag(entry->flags, dirauth::Flag::kGuard));
  }
}

TEST(RendezvousTest, IntroPointComesFromDescriptor) {
  RendezvousFixture fx;
  const auto outcome = fx.connect();
  ASSERT_TRUE(outcome.success);
  const auto* entry = fx.world.consensus().find_relay(outcome.intro_point);
  ASSERT_NE(entry, nullptr);
  bool advertised = false;
  for (const auto& fp : fx.service().introduction_points())
    advertised |= fp == entry->fingerprint;
  EXPECT_TRUE(advertised);
}

TEST(RendezvousTest, FailsWithoutDescriptor) {
  RendezvousFixture fx;
  // Advance past the period boundary without letting the service
  // republish: the new descriptor ids are nowhere.
  fx.service().set_online(false);
  fx.world.run_hours(30);
  fx.client.maintain(fx.world.consensus(), fx.world.now());
  const auto outcome = fx.connect();
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, RendezvousFailure::kNoDescriptor);
}

TEST(RendezvousTest, FailsWithoutClientGuard) {
  RendezvousFixture fx;
  Client fresh(util::Ipv4(203, 0, 113, 10), 1);  // never maintained
  const auto outcome = rendezvous_connect(
      fresh, fx.service(), fx.world.consensus(), fx.world.directories(),
      fx.world.rng(), fx.world.now());
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, RendezvousFailure::kNoClientGuard);
}

TEST(RendezvousTest, FailsWithoutServiceGuard) {
  sim::WorldConfig config;
  config.seed = 101;
  config.honest_relays = 200;
  sim::World world(config);
  const auto index = world.add_service();  // guards never maintained
  Client client(util::Ipv4(203, 0, 113, 11), 2);
  client.maintain(world.consensus(), world.now());
  const auto outcome = rendezvous_connect(
      client, world.service(index), world.consensus(), world.directories(),
      world.rng(), world.now());
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, RendezvousFailure::kNoServiceGuard);
}

TEST(RendezvousTest, ReconnectsAfterDescriptorRotation) {
  RendezvousFixture fx;
  // A day later the world has stepped (services republish each hour
  // step) — connection must still work.
  fx.world.run_hours(26);
  fx.client.maintain(fx.world.consensus(), fx.world.now());
  fx.service().maintain_guards(fx.world.consensus(), fx.world.rng(),
                               fx.world.now());
  const auto outcome = fx.connect();
  EXPECT_TRUE(outcome.success) << to_string(outcome.failure);
}

TEST(RendezvousTest, ManyConnectionsUseVariedRelays) {
  RendezvousFixture fx;
  std::set<relay::RelayId> rps, intros;
  for (int i = 0; i < 30; ++i) {
    const auto outcome = fx.connect();
    ASSERT_TRUE(outcome.success);
    rps.insert(outcome.rendezvous_point);
    intros.insert(outcome.intro_point);
  }
  EXPECT_GT(rps.size(), 10u);    // RP is freshly random per attempt
  EXPECT_LE(intros.size(), 3u);  // intro points come from the descriptor
  EXPECT_GE(intros.size(), 1u);
}

TEST(RendezvousTest, CookiesAreUnique) {
  RendezvousFixture fx;
  std::set<std::uint64_t> cookies;
  for (int i = 0; i < 20; ++i) {
    const auto outcome = fx.connect();
    ASSERT_TRUE(outcome.success);
    cookies.insert(outcome.cookie);
  }
  EXPECT_EQ(cookies.size(), 20u);
}

TEST(RendezvousTest, FailureNamesComplete) {
  EXPECT_STREQ(to_string(RendezvousFailure::kNone), "none");
  EXPECT_STREQ(to_string(RendezvousFailure::kNoDescriptor), "no-descriptor");
  EXPECT_STREQ(to_string(RendezvousFailure::kIntroPointGone),
               "intro-point-gone");
  EXPECT_STREQ(to_string(RendezvousFailure::kNoRendezvousPoint),
               "no-rendezvous-point");
}

}  // namespace
}  // namespace torsim::hs

namespace torsim::hs {
namespace {

TEST(RendezvousTest, RetriesDeadIntroPoints) {
  RendezvousFixture fx(777);
  // Kill every relay currently advertised as an intro point except one,
  // then rebuild the consensus: the connect must fall through to the
  // survivor.
  const auto intros = fx.service().introduction_points();
  ASSERT_GE(intros.size(), 2u);
  for (std::size_t i = 0; i + 1 < intros.size(); ++i) {
    const auto* entry = fx.world.consensus().find(intros[i]);
    if (entry != nullptr)
      fx.world.registry().get(entry->relay).set_online(false,
                                                       fx.world.now());
  }
  fx.world.rebuild_consensus();
  fx.client.maintain(fx.world.consensus(), fx.world.now());

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    const auto outcome = fx.connect();
    if (outcome.success) {
      ++successes;
      // The survivor intro point served the introduction.
      const auto* entry =
          fx.world.consensus().find_relay(outcome.intro_point);
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(entry->fingerprint, intros.back());
    }
  }
  EXPECT_GE(successes, 8);  // descriptor fetch may still occasionally miss
}

TEST(RendezvousTest, AllIntroPointsDeadFails) {
  RendezvousFixture fx(778);
  for (const auto& fp : fx.service().introduction_points()) {
    const auto* entry = fx.world.consensus().find(fp);
    if (entry != nullptr)
      fx.world.registry().get(entry->relay).set_online(false,
                                                       fx.world.now());
  }
  fx.world.rebuild_consensus();
  fx.client.maintain(fx.world.consensus(), fx.world.now());
  const auto outcome = fx.connect();
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, RendezvousFailure::kIntroPointGone);
}

// ---------------------------------------------------------------------
// failure injection: the protocol under heavy churn
// ---------------------------------------------------------------------

TEST(RendezvousTest, SurvivesHeavyChurn) {
  sim::WorldConfig config;
  config.seed = 779;
  config.honest_relays = 250;
  config.hourly_down_probability = 0.08;  // brutal churn
  config.hourly_up_probability = 0.5;
  sim::World world(config);
  const auto index = world.add_service();
  Client client(util::Ipv4(203, 0, 113, 50), 7);

  int successes = 0, attempts = 0;
  for (int hour = 0; hour < 48; ++hour) {
    world.step_hour();
    world.service(index).maintain_guards(world.consensus(), world.rng(),
                                         world.now());
    client.maintain(world.consensus(), world.now());
    const auto outcome =
        rendezvous_connect(client, world.service(index), world.consensus(),
                           world.directories(), world.rng(), world.now());
    ++attempts;
    successes += outcome.success;
  }
  // Churn breaks individual attempts but the protocol self-heals as the
  // service republishes and guards resample.
  EXPECT_GT(successes, attempts / 2);
}

}  // namespace
}  // namespace torsim::hs

namespace torsim::hs {
namespace {

// ---------------------------------------------------------------------
// injected circuit stalls: typed timeout outcomes (satellite of the
// fault-injection engine; the full storm lives in chaos_scenario_test)
// ---------------------------------------------------------------------

struct StallFixture {
  sim::World world;
  std::size_t service_index;
  Client client{util::Ipv4(203, 0, 113, 9), 4242};

  explicit StallFixture(double stall_rate, int retries)
      : world([&] {
          sim::WorldConfig config;
          config.seed = 99;
          config.honest_relays = 200;
          config.faults.circuit_stall_rate = stall_rate;
          config.faults.retry.max_attempts = retries;
          return config;
        }()) {
    service_index = world.add_service();
    world.service(service_index)
        .maintain_guards(world.consensus(), world.rng(), world.now());
    client.maintain(world.consensus(), world.now());
  }

  RendezvousOutcome connect() {
    return rendezvous_connect(client, world.service(service_index),
                              world.consensus(), world.directories(),
                              world.rng(), world.now());
  }
};

TEST(RendezvousFaultTest, TotalStallExhaustsRpRetries) {
  StallFixture fx(1.0, 3);
  const auto outcome = fx.connect();
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, RendezvousFailure::kRendezvousTimeout);
  EXPECT_EQ(outcome.rp_attempts, 3);
  // Every retry was charged its exponential backoff as sim-time.
  EXPECT_EQ(outcome.backoff_spent,
            fx.world.config().faults.retry.total_backoff(3));
  EXPECT_STREQ(to_string(outcome.failure), "rendezvous-timeout");
}

TEST(RendezvousFaultTest, PartialStallSurfacesEveryTimeoutKind) {
  // At an 80% stall rate with 2 tries per circuit, all three stall sites
  // fail often enough that each typed outcome shows up in a storm —
  // and successes still happen (retried-to-success).
  StallFixture fx(0.8, 2);
  int successes = 0;
  std::set<RendezvousFailure> seen;
  for (int i = 0; i < 300; ++i) {
    const auto outcome = fx.connect();
    if (outcome.success) {
      ++successes;
      EXPECT_EQ(outcome.failure, RendezvousFailure::kNone);
    } else {
      seen.insert(outcome.failure);
    }
    EXPECT_LE(outcome.rp_attempts, 2);
  }
  EXPECT_GT(successes, 0);
  EXPECT_TRUE(seen.count(RendezvousFailure::kRendezvousTimeout));
  EXPECT_TRUE(seen.count(RendezvousFailure::kIntroTimeout));
  EXPECT_TRUE(seen.count(RendezvousFailure::kServiceCircuitTimeout));
}

TEST(RendezvousFaultTest, ZeroStallNeverRetries) {
  StallFixture fx(0.0, 3);
  for (int i = 0; i < 20; ++i) {
    const auto outcome = fx.connect();
    ASSERT_TRUE(outcome.success) << to_string(outcome.failure);
    EXPECT_EQ(outcome.rp_attempts, 1);
    EXPECT_EQ(outcome.backoff_spent, 0);
  }
}

// ---------------------------------------------------------------------
// guard resampling under unreachability
// ---------------------------------------------------------------------

TEST(RendezvousFaultTest, GuardsResampleWhenFewerThanTwoReachable) {
  RendezvousFixture fx(881);
  // Knock every current client guard out of the consensus.
  const auto original = fx.client.guards().guards();
  ASSERT_EQ(original.size(), 3u);
  for (const auto& slot : original)
    fx.world.registry().get(slot.relay).set_online(false, fx.world.now());
  fx.world.rebuild_consensus();

  // With zero reachable guards, maintain() must resample a full set
  // (the "< 2 reachable" rule) and connections must work again.
  fx.client.maintain(fx.world.consensus(), fx.world.now());
  const auto& resampled = fx.client.guards().guards();
  ASSERT_EQ(resampled.size(), 3u);
  int still_listed = 0;
  for (const auto& slot : resampled)
    still_listed +=
        fx.world.consensus().find_relay(slot.relay) != nullptr;
  EXPECT_EQ(still_listed, 3);
  fx.service().maintain_guards(fx.world.consensus(), fx.world.rng(),
                               fx.world.now());
  const auto outcome = fx.connect();
  EXPECT_TRUE(outcome.success) << to_string(outcome.failure);
}

TEST(RendezvousFaultTest, OneDeadGuardDoesNotForceResample) {
  RendezvousFixture fx(882);
  const auto original = fx.client.guards().guards();
  ASSERT_EQ(original.size(), 3u);
  // Kill exactly one guard: two remain reachable, so the set is kept.
  fx.world.registry().get(original[0].relay).set_online(false,
                                                        fx.world.now());
  fx.world.rebuild_consensus();
  fx.client.maintain(fx.world.consensus(), fx.world.now());
  const auto& kept = fx.client.guards().guards();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[1].relay, original[1].relay);
  EXPECT_EQ(kept[2].relay, original[2].relay);
  fx.service().maintain_guards(fx.world.consensus(), fx.world.rng(),
                               fx.world.now());
  const auto outcome = fx.connect();
  EXPECT_TRUE(outcome.success) << to_string(outcome.failure);
}

TEST(RendezvousTest, StealthServiceRequiresCookie) {
  sim::WorldConfig config;
  config.seed = 880;
  config.honest_relays = 200;
  sim::World world(config);

  auto service = ServiceHost::create(world.rng(), world.now());
  const std::vector<std::uint8_t> cookie = {1, 2, 3, 4};
  service.set_descriptor_cookie(cookie);
  service.maintain_guards(world.consensus(), world.rng(), world.now());
  service.maybe_publish(world.consensus(), world.directories(), world.rng(),
                        world.now(), true);

  Client member(util::Ipv4(203, 0, 113, 70), 5);
  member.maintain(world.consensus(), world.now());
  const auto authed = rendezvous_connect(member, service, world.consensus(),
                                         world.directories(), world.rng(),
                                         world.now(), cookie);
  EXPECT_TRUE(authed.success) << to_string(authed.failure);

  Client outsider(util::Ipv4(203, 0, 113, 71), 6);
  outsider.maintain(world.consensus(), world.now());
  const auto blind = rendezvous_connect(outsider, service, world.consensus(),
                                        world.directories(), world.rng(),
                                        world.now());
  EXPECT_FALSE(blind.success);
  EXPECT_EQ(blind.failure, RendezvousFailure::kNoDescriptor);
}

}  // namespace
}  // namespace torsim::hs
