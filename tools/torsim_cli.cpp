// torsim — command-line driver for every experiment in the reproduction.
//
//   torsim scan        [--scale S] [--seed N] [--csv FILE]   Fig. 1
//   torsim crawl       [--scale S] [--seed N]                Table I
//   torsim classify    [--scale S] [--seed N] [--csv FILE]   Fig. 2
//   torsim popularity  [--scale S] [--seed N] [--csv FILE]   Table II
//   torsim botnet      [--scale S] [--seed N]                Goldnet inference
//   torsim harvest     [--ips N] [--relays M] [--seed N]     Sec. II attack
//   torsim trackdet    [--seed N] [--csv FILE]               Sec. VII
//   torsim consensus   [--hours N] [--out FILE]              dir-spec dump
//   torsim scenario    run|check|list [PACK]                 scenario packs
//   torsim geoip IP [IP...]                                  GeoIP lookups
//   torsim serve       --socket PATH [--services N]          warm-world daemon
//   torsim load        --socket PATH [--clients N]           load generator
//   torsim query       [--requests N] [--script FILE]        in-process answers
//
// The command list below is driven by kCommands: usage(), dispatch,
// the unknown-command error, and the hidden --list-commands flag all
// read the same table, so they cannot drift apart.
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve_common.hpp"

#include "attack/harvester.hpp"
#include "content/pipeline.hpp"
#include "dirspec/consensus_doc.hpp"
#include "fault/plan.hpp"
#include "geo/client_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "popularity/botnet_inference.hpp"
#include "popularity/request_generator.hpp"
#include "popularity/resolver.hpp"
#include "scan/cert_analysis.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "scenario/engine.hpp"
#include "sim/world.hpp"
#include "stats/histogram.hpp"
#include "trackdet/scenario.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/memo.hpp"

namespace {

using namespace torsim;

struct Options {
  double scale = 0.1;
  std::uint64_t seed = 20130204;
  std::string csv;
  std::string out;
  int ips = 10;
  int relays = 12;
  int hours = 6;
  /// Fan-out worker threads; 0 = one per hardware thread, 1 = serial.
  int threads = 0;
  /// Injected-fault plan (--faults mild|moderate|severe|k=v,...).
  fault::FaultPlan faults{};
  /// The raw --faults text, kept for commands (scenario) that re-apply
  /// the spec themselves.
  std::string faults_spec;
  /// Deterministic-metrics JSON destination (--metrics-out FILE).
  std::string metrics_out;
  /// Chrome trace_event JSON destination (--trace-out FILE).
  std::string trace_out;

  // Serving subsystem knobs (serve / load / query; docs/serving.md).
  std::string socket;       ///< --socket PATH (unix-domain socket)
  int services = 16;        ///< --services N (resident hidden services)
  int clients = 4;          ///< --clients N (load worker connections)
  int requests = 100;       ///< --requests N (generated mix length)
  bool open_loop = false;   ///< --open-loop (pipeline instead of RPC)
  bool shutdown = false;    ///< --shutdown (append a shutdown request)
  std::string script;       ///< --script FILE (explicit request list)
  int batch_max = 256;      ///< --batch-max N (requests per tick)
  int queue_cap = 1024;     ///< --queue-cap N (admission-control bound)
  std::string chaos_spec;   ///< --chaos SPEC (connection-level faults)
  std::string telemetry_out;  ///< --telemetry-out FILE (edge/load telemetry)

  std::vector<std::string> positional;

  /// Wired by main() when --metrics-out / --trace-out are given; the
  /// commands thread these into their component configs.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

bool parse_cache_mode(const std::string& text) {
  if (text == "on") return true;
  if (text == "off") return false;
  throw std::invalid_argument("unknown cache mode '" + text +
                              "' (expected on|off)");
}

util::LogLevel parse_log_level(const std::string& text) {
  if (text == "debug") return util::LogLevel::kDebug;
  if (text == "info") return util::LogLevel::kInfo;
  if (text == "warn") return util::LogLevel::kWarn;
  if (text == "error") return util::LogLevel::kError;
  if (text == "off") return util::LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + text +
                              "' (expected debug|info|warn|error|off)");
}

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scale") opt.scale = std::stod(next());
    else if (arg == "--seed") opt.seed = std::stoull(next());
    else if (arg == "--csv") opt.csv = next();
    else if (arg == "--out") opt.out = next();
    else if (arg == "--ips") opt.ips = std::stoi(next());
    else if (arg == "--relays") opt.relays = std::stoi(next());
    else if (arg == "--hours") opt.hours = std::stoi(next());
    else if (arg == "--threads") opt.threads = std::stoi(next());
    else if (arg == "--cache") util::set_memo_enabled(parse_cache_mode(next()));
    else if (arg == "--faults") {
      opt.faults_spec = next();
      opt.faults = fault::FaultPlan::parse(opt.faults_spec);
    }
    else if (arg == "--metrics-out") opt.metrics_out = next();
    else if (arg == "--trace-out") opt.trace_out = next();
    else if (arg == "--log-level") util::set_log_level(parse_log_level(next()));
    else if (arg == "--socket") opt.socket = next();
    else if (arg == "--services") opt.services = std::stoi(next());
    else if (arg == "--clients") opt.clients = std::stoi(next());
    else if (arg == "--requests") opt.requests = std::stoi(next());
    else if (arg == "--open-loop") opt.open_loop = true;
    else if (arg == "--shutdown") opt.shutdown = true;
    else if (arg == "--script") opt.script = next();
    else if (arg == "--batch-max") opt.batch_max = std::stoi(next());
    else if (arg == "--queue-cap") opt.queue_cap = std::stoi(next());
    else if (arg == "--chaos") opt.chaos_spec = next();
    else if (arg == "--telemetry-out") opt.telemetry_out = next();
    else if (!arg.empty() && arg[0] == '-')
      throw std::invalid_argument("unknown option " + arg);
    else opt.positional.push_back(arg);
  }
  return opt;
}

/// Writes `text` to `path`; returns 0 or prints an `error:` line and
/// returns 1. Every command funnels file output through this helper so
/// unwritable destinations fail the same way everywhere.
int write_text_file(const std::string& path, const std::string& text,
                    const char* what);

population::Population make_population(const Options& opt) {
  population::PopulationConfig config;
  config.seed = opt.seed;
  config.scale = opt.scale;
  return population::Population::generate(config);
}

int cmd_scan(const Options& opt) {
  const auto pop = make_population(opt);
  scan::PortScanner scanner(scan::ScanConfig{.seed = opt.seed + 1,
                                             .scan_days = 8,
                                             .probe_timeout_probability =
                                                 0.02,
                                             .threads = opt.threads,
                                             .faults = opt.faults,
                                             .metrics = opt.metrics});
  const auto report = scanner.scan(pop);
  std::printf("scanned %lld onions (descriptors available), found %lld open "
              "ports on %lld of them (coverage %.0f%%)\n",
              static_cast<long long>(report.onions_scanned),
              static_cast<long long>(report.total_open_ports()),
              static_cast<long long>(report.onions_with_open_ports),
              report.coverage * 100);
  std::printf("probe failures: %lld timeout, %lld closed",
              static_cast<long long>(report.probe_timeouts),
              static_cast<long long>(report.probes_closed));
  if (opt.faults.enabled())
    std::printf(" | faults: %lld corrupt, %lld recovered by retry, "
                "%zu typed records",
                static_cast<long long>(report.probes_corrupt),
                static_cast<long long>(report.probes_recovered),
                report.failures.size());
  std::printf("\n");
  const auto rows =
      report.figure1(static_cast<std::int64_t>(50 * opt.scale));
  for (const auto& [label, count] : rows)
    std::printf("%s\n",
                stats::bar_line(label, count, report.total_open_ports(), 40)
                    .c_str());
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    csv.row({"port", "open", "timeout", "closed"});
    std::map<std::uint16_t, std::array<std::int64_t, 3>> per_port;
    for (const auto& [port, count] : report.open_ports.entries())
      per_port[port][0] = count;
    for (const auto& [port, count] : report.timeout_ports.entries())
      per_port[port][1] = count;
    for (const auto& [port, count] : report.closed_ports.entries())
      per_port[port][2] = count;
    for (const auto& [port, counts] : per_port)
      csv.typed_row(port, counts[0], counts[1], counts[2]);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  return 0;
}

int cmd_crawl(const Options& opt) {
  const auto pop = make_population(opt);
  scan::PortScanner scanner(scan::ScanConfig{.threads = opt.threads,
                                             .faults = opt.faults,
                                             .metrics = opt.metrics});
  const auto scan_report = scanner.scan(pop);
  scan::Crawler crawler(scan::CrawlConfig{
      .faults = opt.faults,
      .revisit_attempts =
          opt.faults.enabled() ? opt.faults.retry.max_attempts : 1,
      .metrics = opt.metrics});
  const auto crawl = crawler.crawl(pop, scan_report);
  std::printf("destinations %lld -> still open %lld -> connected %lld "
              "(failed: %lld timeout, %lld closed)\n",
              static_cast<long long>(crawl.destinations),
              static_cast<long long>(crawl.still_open),
              static_cast<long long>(crawl.connected),
              static_cast<long long>(crawl.failed_timeout),
              static_cast<long long>(crawl.failed_closed));
  if (opt.faults.enabled())
    std::printf("faults: %lld corrupt pages, %lld recovered by re-visit, "
                "%zu typed records\n",
                static_cast<long long>(crawl.corrupt_pages),
                static_cast<long long>(crawl.recovered_by_revisit),
                crawl.failures.size());
  std::map<std::uint16_t, int> per_port;
  for (const auto& page : crawl.pages) ++per_port[page.port];
  std::printf("per-port (Table I):\n");
  for (const auto& [port, count] : per_port)
    if (count >= 3 || port == 8080)
      std::printf("  %-6u %d\n", port, count);
  const auto certs = scan::analyse_certificates(pop, scan_report);
  std::printf("certificates: %lld seen, %lld CN-mismatch (%lld TorHost), "
              "%lld public-DNS\n",
              static_cast<long long>(certs.certificates_seen),
              static_cast<long long>(certs.selfsigned_mismatch),
              static_cast<long long>(certs.torhost_cn),
              static_cast<long long>(certs.public_dns_cn));
  return 0;
}

int cmd_classify(const Options& opt) {
  const auto pop = make_population(opt);
  scan::PortScanner scanner(scan::ScanConfig{.threads = opt.threads,
                                             .faults = opt.faults,
                                             .metrics = opt.metrics});
  const auto scan_report = scanner.scan(pop);
  scan::Crawler crawler(scan::CrawlConfig{
      .faults = opt.faults,
      .revisit_attempts =
          opt.faults.enabled() ? opt.faults.retry.max_attempts : 1,
      .metrics = opt.metrics});
  const auto crawl = crawler.crawl(pop, scan_report);
  util::Rng rng(opt.seed + 2);
  const auto classifier = content::TopicClassifier::make_default(rng);
  content::ContentPipeline pipeline(classifier,
                                    content::LanguageDetector::instance(),
                                    {.threads = opt.threads});
  const auto result = pipeline.run(crawl.pages);
  std::printf("classifiable %zu, English %zu (%.0f%%), TorHost defaults %zu, "
              "classified %zu\n",
              result.classifiable, result.english,
              100.0 * result.language_shares()[0], result.torhost_default,
              result.classified);
  const auto pct = result.topic_percentages();
  for (int i = 0; i < content::kNumTopics; ++i)
    std::printf("  %-20s %5.1f%%\n",
                std::string(content::topic_name(content::topic_from_index(i)))
                    .c_str(),
                pct[i]);
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    csv.row({"topic", "count", "percent"});
    for (int i = 0; i < content::kNumTopics; ++i)
      csv.typed_row(content::topic_name(content::topic_from_index(i)),
                    result.topic_counts[i], pct[i]);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  return 0;
}

int cmd_popularity(const Options& opt) {
  const auto pop = make_population(opt);
  popularity::RequestGenerator generator(popularity::RequestGeneratorConfig{
      .seed = opt.seed + 3, .metrics = opt.metrics});
  const auto stream = generator.generate(pop);
  popularity::DescriptorResolver resolver(popularity::ResolverConfig{
      .threads = opt.threads, .metrics = opt.metrics});
  resolver.build_dictionary(pop);
  const auto report = resolver.resolve(stream, pop);
  std::printf("%lld requests, %lld unique ids, %lld resolved to %lld onions "
              "(unresolved share %.2f)\n",
              static_cast<long long>(report.total_requests),
              static_cast<long long>(report.unique_descriptor_ids),
              static_cast<long long>(report.resolved_descriptor_ids),
              static_cast<long long>(report.resolved_onions),
              report.unresolved_request_share());
  for (std::size_t i = 0; i < report.ranking.size() && i < 20; ++i) {
    const auto& row = report.ranking[i];
    std::printf("  %2zu  %-7lld %s %s\n", i + 1,
                static_cast<long long>(row.requests), row.onion.c_str(),
                row.label.empty() ? "" : ("[" + row.label + "]").c_str());
  }
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    csv.row({"rank", "onion", "requests", "label", "paper_rank"});
    for (std::size_t i = 0; i < report.ranking.size(); ++i)
      csv.typed_row(i + 1, report.ranking[i].onion,
                    report.ranking[i].requests, report.ranking[i].label,
                    report.ranking[i].paper_rank);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  return 0;
}

int cmd_botnet(const Options& opt) {
  const auto pop = make_population(opt);
  popularity::RequestGenerator generator(popularity::RequestGeneratorConfig{
      .seed = opt.seed + 3, .metrics = opt.metrics});
  const auto stream = generator.generate(pop);
  popularity::DescriptorResolver resolver(popularity::ResolverConfig{
      .threads = opt.threads, .metrics = opt.metrics});
  resolver.build_dictionary(pop);
  const auto ranking = resolver.resolve(stream, pop);
  const auto report = popularity::infer_botnet_infrastructure(ranking, pop);
  std::printf("C&C-fingerprint candidates among top of ranking: %zu\n",
              report.cnc_candidates.size());
  for (const auto& server : report.physical_servers) {
    std::printf("  physical server (Apache uptime %lld s): %zu onions, "
                "%.0f KB/s, %.1f req/s\n",
                static_cast<long long>(server.apache_uptime_seconds),
                server.onions.size(),
                server.mean_traffic_bytes_per_sec / 1024.0,
                server.mean_requests_per_sec);
    for (const auto& onion : server.onions)
      std::printf("    %s.onion\n", onion.c_str());
  }
  return 0;
}

int cmd_harvest(const Options& opt) {
  sim::WorldConfig wc;
  wc.seed = opt.seed;
  wc.honest_relays = 300;
  wc.threads = opt.threads;
  wc.faults = opt.faults;
  wc.metrics = opt.metrics;
  wc.trace = opt.trace;
  sim::World world(wc);
  std::set<std::string> truth;
  for (int i = 0; i < 80; ++i)
    truth.insert(world.service(world.add_service()).onion_address());
  attack::HarvesterConfig hc;
  hc.num_ips = opt.ips;
  hc.relays_per_ip = opt.relays;
  hc.metrics = opt.metrics;
  hc.trace = opt.trace;
  attack::ShadowHarvester harvester(hc);
  harvester.deploy(world);
  const auto report = harvester.run(world, 24);
  std::size_t hits = 0;
  for (const auto& onion : report.onions) hits += truth.count(onion);
  std::printf("%d IPs x %d relays -> %d ring positions, %zu/%zu onions "
              "(%.0f%%), %lld fetches logged\n",
              opt.ips, opt.relays, report.positions_used, hits, truth.size(),
              100.0 * static_cast<double>(hits) /
                  static_cast<double>(truth.size()),
              static_cast<long long>(report.fetch_requests_logged));
  return 0;
}

int cmd_trackdet(const Options& opt) {
  const auto study = trackdet::run_silkroad_study(opt.seed);
  std::printf("%lld daily snapshots, threshold %.1f, takeover periods %lld\n",
              static_cast<long long>(study.report.snapshots),
              study.report.suspicion_threshold,
              static_cast<long long>(study.report.full_takeover_periods));
  for (const auto& cluster : study.report.clusters)
    std::printf("  cluster '%s*': %zu servers, %lld periods, ratio %.0f%s\n",
                cluster.shared_prefix.c_str(), cluster.servers.size(),
                static_cast<long long>(cluster.periods_covered),
                cluster.max_ratio,
                cluster.full_takeover ? " [TAKEOVER]" : "");
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    csv.row({"server", "responsible_periods", "fp_switches", "max_ratio",
             "flags", "truth_campaign"});
    for (const auto& s : study.report.suspicious)
      csv.typed_row(s.name, s.stats.periods_responsible,
                    s.stats.fingerprint_switches, s.stats.max_ratio,
                    s.flags.count(), s.truth_campaign);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  return 0;
}

int cmd_consensus(const Options& opt) {
  sim::WorldConfig wc;
  wc.seed = opt.seed;
  wc.honest_relays = 100;
  wc.threads = opt.threads;
  wc.faults = opt.faults;
  wc.metrics = opt.metrics;
  wc.trace = opt.trace;
  sim::World world(wc);
  world.run_hours(opt.hours);
  const auto text = dirspec::render_archive(world.archive());
  if (opt.out.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  const std::string what =
      "consensus archive (" + std::to_string(world.archive().size()) +
      " consensuses)";
  return write_text_file(opt.out, text, what.c_str());
}

int cmd_report(const Options& opt) {
  // Full pipeline at the requested scale, emitted as a measured-vs-paper
  // markdown report (the generator behind EXPERIMENTS.md).
  const auto pop = make_population(opt);
  scan::PortScanner scanner(scan::ScanConfig{.threads = opt.threads,
                                             .faults = opt.faults,
                                             .metrics = opt.metrics});
  const auto scan_report = scanner.scan(pop);
  const auto certs = scan::analyse_certificates(pop, scan_report);
  scan::Crawler crawler(scan::CrawlConfig{
      .faults = opt.faults,
      .revisit_attempts =
          opt.faults.enabled() ? opt.faults.retry.max_attempts : 1,
      .metrics = opt.metrics});
  const auto crawl = crawler.crawl(pop, scan_report);
  util::Rng rng(opt.seed + 2);
  const auto classifier = content::TopicClassifier::make_default(rng);
  content::ContentPipeline pipeline(classifier,
                                    content::LanguageDetector::instance(),
                                    {.threads = opt.threads});
  const auto content_report = pipeline.run(crawl.pages);
  popularity::RequestGenerator generator(popularity::RequestGeneratorConfig{
      .seed = opt.seed + 3, .metrics = opt.metrics});
  const auto stream = generator.generate(pop);
  popularity::DescriptorResolver resolver(popularity::ResolverConfig{
      .threads = opt.threads, .metrics = opt.metrics});
  resolver.build_dictionary(pop);
  const auto resolution = resolver.resolve(stream, pop);

  const auto& paper = population::paper();
  const double s = opt.scale;
  std::string out;
  char line[256];
  const auto row = [&](const std::string& label, double measured,
                       double paper_val) {
    std::snprintf(line, sizeof line, "| %s | %.0f | %.0f | %.2f |\n",
                  label.c_str(), measured, paper_val * s,
                  paper_val * s != 0 ? measured / (paper_val * s) : 0.0);
    out += line;
  };
  std::snprintf(line, sizeof line,
                "# torsim generated report (scale %.2f, seed %llu)\n\n", s,
                static_cast<unsigned long long>(opt.seed));
  out += line;
  out += "## Fig. 1 / Sec. III\n\n| quantity | measured | paper(scaled) | "
         "ratio |\n|---|---|---|---|\n";
  row("descriptors available",
      static_cast<double>(scan_report.descriptors_available),
      static_cast<double>(paper.descriptors_at_scan));
  row("open ports", static_cast<double>(scan_report.total_open_ports()),
      static_cast<double>(paper.open_ports_total));
  for (const auto& pc : paper.fig1_ports) {
    if (pc.port == 0) continue;
    row(std::string(pc.label),
        static_cast<double>(scan_report.open_ports.count(pc.port)),
        static_cast<double>(pc.count));
  }
  row("CN-mismatch certs", static_cast<double>(certs.selfsigned_mismatch),
      static_cast<double>(paper.certs_selfsigned_mismatch));
  row("public-DNS certs", static_cast<double>(certs.public_dns_cn),
      static_cast<double>(paper.certs_public_dns_cn));

  out += "\n## Table I / Sec. IV\n\n| quantity | measured | paper(scaled) | "
         "ratio |\n|---|---|---|---|\n";
  row("crawl destinations", static_cast<double>(crawl.destinations),
      static_cast<double>(paper.crawl_destinations));
  row("connected", static_cast<double>(crawl.connected),
      static_cast<double>(paper.crawl_connected));
  row("classifiable", static_cast<double>(content_report.classifiable),
      static_cast<double>(paper.classifiable));
  row("english", static_cast<double>(content_report.english),
      static_cast<double>(paper.english_pages));
  row("classified", static_cast<double>(content_report.classified),
      static_cast<double>(paper.classified_pages));

  out += "\n## Fig. 2 topics (% of classified)\n\n| topic | measured | paper "
         "|\n|---|---|---|\n";
  const auto pct = content_report.topic_percentages();
  for (int i = 0; i < content::kNumTopics; ++i) {
    std::snprintf(line, sizeof line, "| %s | %.1f | %.0f |\n",
                  std::string(content::topic_name(
                                  content::topic_from_index(i)))
                      .c_str(),
                  pct[i], content::paper_topic_percentages()[i]);
    out += line;
  }

  out += "\n## Table II / Sec. V\n\n| quantity | measured | paper(scaled) | "
         "ratio |\n|---|---|---|---|\n";
  row("unique descriptor ids",
      static_cast<double>(resolution.unique_descriptor_ids),
      static_cast<double>(paper.unique_descriptor_ids));
  row("resolved ids", static_cast<double>(resolution.resolved_descriptor_ids),
      static_cast<double>(paper.resolved_descriptor_ids));
  row("resolved onions", static_cast<double>(resolution.resolved_onions),
      static_cast<double>(paper.resolved_onions));
  std::snprintf(line, sizeof line,
                "\nunresolved request share: measured %.2f, paper %.2f\n",
                resolution.unresolved_request_share(),
                paper.nonexistent_request_share);
  out += line;

  if (opt.out.empty()) {
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  return write_text_file(opt.out, out, "report");
}

/// Maps a `torsim scenario` pack operand to a file path: an existing
/// file wins; a bare name is looked up as scenarios/NAME.scn relative
/// to the working directory.
std::string resolve_pack_path(const std::string& arg) {
  if (std::filesystem::is_regular_file(arg)) return arg;
  if (arg.find('/') == std::string::npos && !arg.ends_with(".scn"))
    return "scenarios/" + arg + ".scn";
  return arg;
}

int cmd_scenario(const Options& opt) {
  if (opt.positional.empty()) {
    std::fprintf(stderr, "usage: torsim scenario run|check|list [PACK]\n");
    return 1;
  }
  const std::string& sub = opt.positional.front();
  if (sub == "list") {
    const std::string dir =
        opt.positional.size() > 1 ? opt.positional[1] : "scenarios";
    for (const auto& name : scenario::list_packs(dir))
      std::printf("%s\n", name.c_str());
    return 0;
  }
  if (sub != "run" && sub != "check") {
    std::fprintf(stderr,
                 "error: unknown scenario subcommand '%s' "
                 "(expected run|check|list)\n",
                 sub.c_str());
    return 1;
  }
  if (opt.positional.size() < 2) {
    std::fprintf(stderr, "usage: torsim scenario %s PACK\n", sub.c_str());
    return 1;
  }
  const scenario::ScenarioPack pack =
      scenario::load_pack_file(resolve_pack_path(opt.positional[1]));
  if (sub == "check") {
    scenario::validate_pack(pack);
    if (!(scenario::parse_pack(scenario::render_pack(pack)) == pack)) {
      std::fprintf(stderr,
                   "error: pack '%s' does not round-trip through the "
                   "canonical renderer\n",
                   pack.name.c_str());
      return 1;
    }
    std::printf("pack '%s' OK: %zu events, horizon %d hours\n",
                pack.name.c_str(), pack.events.size(), pack.horizon_hours);
    return 0;
  }
  scenario::ScenarioRunConfig rc;
  rc.threads = opt.threads;
  rc.fault_override = opt.faults_spec;
  rc.metrics = opt.metrics;
  rc.trace = opt.trace;
  const auto report = scenario::run_pack(pack, rc);
  std::printf("%s\n", report.describe().c_str());
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    report.write_timeline(csv);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  return 0;
}

int cmd_geoip(const Options& opt) {
  if (opt.positional.empty()) {
    std::fprintf(stderr, "usage: torsim geoip IP [IP...]\n");
    return 1;
  }
  const auto db = geo::GeoDatabase::standard();
  for (const auto& text : opt.positional) {
    const auto ip = util::Ipv4::parse(text);
    const auto& country = db.lookup(ip);
    std::printf("%-16s %s (%s)\n", ip.to_string().c_str(),
                country.name.c_str(), country.code.c_str());
  }
  return 0;
}

tools::ServeParams serve_params(const Options& opt) {
  tools::ServeParams params;
  params.scale = opt.scale;
  params.seed = opt.seed;
  params.services = opt.services;
  params.warmup_hours = opt.hours;
  params.threads = opt.threads;
  params.faults = opt.faults;
  return params;
}

/// Reads a --script file whole; throws on open failure so script typos
/// fail like any other bad flag value.
std::string read_script_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::invalid_argument("cannot open script file '" + path + "'");
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    text.append(buffer, n);
  std::fclose(f);
  return text;
}

/// The request stream `torsim load` and `torsim query` share: the
/// seeded default mix (or a parsed --script), plus the trailing
/// shutdown request when --shutdown is given — identical inputs are
/// what makes their CSVs byte-comparable.
std::vector<serve::Request> request_mix(const Options& opt,
                                        bool append_shutdown) {
  std::vector<serve::Request> mix =
      opt.script.empty()
          ? serve::default_request_mix(
                opt.seed, opt.requests,
                static_cast<std::uint64_t>(opt.services), opt.clients)
          : serve::parse_script(read_script_file(opt.script));
  if (append_shutdown) {
    serve::Request request;
    request.id = mix.size() + 1;
    request.kind = serve::QueryKind::kShutdown;
    mix.push_back(request);
  }
  return mix;
}

int cmd_serve(const Options& opt) {
  if (opt.socket.empty())
    throw std::invalid_argument("serve needs --socket PATH");
  serve::WorldSession session(
      tools::make_session_config(serve_params(opt), opt.metrics));
  serve::ServerConfig sc;
  sc.socket_path = opt.socket;
  sc.max_batch = opt.batch_max;
  sc.queue_capacity = opt.queue_cap;
  if (!opt.chaos_spec.empty()) sc.chaos = fault::FaultPlan::parse(opt.chaos_spec);
  obs::MetricsRegistry telemetry;
  sc.telemetry = &telemetry;
  serve::Server server(session, sc);
  server.start();
  std::printf("torsimd listening on %s (services %d, warmup %dh)\n",
              server.socket_path().c_str(), opt.services, opt.hours);
  std::fflush(stdout);
  server.run();
  std::printf("torsimd: event loop exited\n");
  if (!opt.telemetry_out.empty())
    return write_text_file(opt.telemetry_out, telemetry.to_json(),
                           "serve telemetry");
  return 0;
}

int cmd_load(const Options& opt) {
  if (opt.socket.empty())
    throw std::invalid_argument("load needs --socket PATH");
  serve::LoadConfig lc;
  lc.socket_path = opt.socket;
  lc.clients = opt.clients;
  lc.requests = opt.requests;
  lc.open_loop = opt.open_loop;
  lc.seed = opt.seed;
  lc.services = static_cast<std::uint64_t>(opt.services);
  lc.shutdown = opt.shutdown;
  if (!opt.script.empty())
    lc.script = serve::parse_script(read_script_file(opt.script));
  obs::MetricsRegistry telemetry;
  lc.telemetry = &telemetry;
  const serve::LoadResult result = serve::run_load(lc);
  std::int64_t ok = 0, errors = 0;
  for (const serve::Response& response : result.responses) {
    if (response.status == serve::Status::kOk) ++ok;
    else ++errors;
  }
  std::printf("load: %zu requests (%s loop), %lld ok, %lld errors, "
              "%lld retries, %lld reconnects\n",
              result.requests.size(), opt.open_loop ? "open" : "closed",
              static_cast<long long>(ok), static_cast<long long>(errors),
              static_cast<long long>(result.retries),
              static_cast<long long>(result.reconnects));
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    tools::write_result_csv(csv, result.requests, result.responses);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  if (!opt.telemetry_out.empty())
    return write_text_file(opt.telemetry_out, telemetry.to_json(),
                           "load telemetry");
  return 0;
}

int cmd_query(const Options& opt) {
  serve::WorldSession session(
      tools::make_session_config(serve_params(opt), opt.metrics));
  const std::vector<serve::Request> mix = request_mix(opt, opt.shutdown);
  // One request at a time: this is the serial reference the daemon's
  // batched execution must match byte-for-byte (docs/serving.md).
  std::vector<serve::Response> responses;
  responses.reserve(mix.size());
  for (const serve::Request& request : mix)
    responses.push_back(session.execute(request));
  std::int64_t ok = 0, errors = 0;
  for (const serve::Response& response : responses) {
    if (response.status == serve::Status::kOk) ++ok;
    else ++errors;
  }
  std::printf("query: %zu requests, %lld ok, %lld errors\n", mix.size(),
              static_cast<long long>(ok), static_cast<long long>(errors));
  if (!opt.csv.empty()) {
    util::CsvWriter csv(opt.csv);
    tools::write_result_csv(csv, mix, responses);
    std::printf("wrote %zu rows to %s\n", csv.rows_written(),
                opt.csv.c_str());
  }
  return 0;
}

int write_text_file(const std::string& path, const std::string& text,
                    const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s to %s\n", what, path.c_str());
  return 0;
}

/// The single source of truth for the command list. usage(), the
/// dispatcher, the unknown-command error, and --list-commands all walk
/// this table; the cli_help_lists_every_command smoke test walks
/// --list-commands, so adding a command here is the whole job.
struct Command {
  const char* name;
  int (*run)(const Options&);
  /// Whether bare (non-flag) operands are legal after the command name.
  bool takes_positional;
  const char* summary;
};

const Command kCommands[] = {
    {"scan", cmd_scan, false,
     "port-scan the synthetic landscape (Fig. 1)"},
    {"crawl", cmd_crawl, false,
     "crawl HTTP(S) destinations (Table I + certificates)"},
    {"classify", cmd_classify, false,
     "language + topic classification (Fig. 2)"},
    {"popularity", cmd_popularity, false,
     "request resolution and ranking (Table II)"},
    {"botnet", cmd_botnet, false, "Goldnet infrastructure inference"},
    {"harvest", cmd_harvest, false,
     "shadow-relay onion harvesting (Sec. II)"},
    {"trackdet", cmd_trackdet, false,
     "Silk Road tracking detection (Sec. VII)"},
    {"consensus", cmd_consensus, false,
     "dump a dir-spec consensus archive"},
    {"report", cmd_report, false,
     "full-pipeline measured-vs-paper markdown report"},
    {"scenario", cmd_scenario, true,
     "run|check|list longitudinal scenario packs (docs/scenarios.md)"},
    {"geoip", cmd_geoip, true, "look up synthetic GeoIP for addresses"},
    {"serve", cmd_serve, false,
     "warm-world query daemon on a unix socket (docs/serving.md)"},
    {"load", cmd_load, false,
     "closed/open-loop load generator against a serve socket"},
    {"query", cmd_query, false,
     "answer a request mix in-process (serve equivalence reference)"},
};

const Command* find_command(const std::string& name) {
  for (const Command& command : kCommands)
    if (name == command.name) return &command;
  return nullptr;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "torsim — Tor hidden-service landscape reproduction "
               "(Biryukov et al., ICDCS 2014)\n\n"
               "usage: torsim COMMAND [options]\n\ncommands:\n");
  for (const Command& command : kCommands)
    std::fprintf(out, "  %-11s %s\n", command.name, command.summary);
  std::fprintf(
      out,
      "\noptions: --scale S --seed N --csv FILE --out FILE --ips N "
      "--relays M --hours N --threads T --cache MODE --faults SPEC\n"
      "         --metrics-out FILE --trace-out FILE --log-level LEVEL\n"
      "  --threads T   fan-out workers (0 = one per hardware thread,\n"
      "                1 = serial; results are identical either way)\n"
      "  --cache MODE  on|off (default on): memoize descriptor-id\n"
      "                derivations and HSDir ring walks; outputs are\n"
      "                byte-identical either way (docs/performance.md)\n"
      "  --faults SPEC inject connection/directory faults: a profile\n"
      "                (mild, moderate, severe) or k=v pairs, e.g.\n"
      "                drop=0.05,timeout=0.1,retries=4 — see\n"
      "                docs/fault-injection.md\n"
      "  --metrics-out FILE  deterministic metrics JSON (byte-identical\n"
      "                for every --threads value; docs/observability.md)\n"
      "  --trace-out FILE    sim-time Chrome trace_event JSON (open in\n"
      "                chrome://tracing or Perfetto)\n"
      "  --log-level LEVEL   debug|info|warn|error|off (default warn)\n"
      "\nserving options (serve/load/query; docs/serving.md):\n"
      "  --socket PATH --services N --clients N --requests N\n"
      "  --open-loop --shutdown --script FILE --batch-max N\n"
      "  --queue-cap N --chaos SPEC --telemetry-out FILE\n"
      "  (serve warms --services services for --hours hours; load and\n"
      "  query share one seeded request mix, so their --csv outputs are\n"
      "  byte-comparable — the serve equivalence gate)\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Global --help/-h anywhere on the line wins, exits 0, and prints to
  // stdout — so `torsim --help` and `torsim CMD --help` both work and
  // the per-command help smoke test can loop over every entry.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--list-commands") == 0) {
      for (const Command& command : kCommands)
        std::printf("%s\n", command.name);
      return 0;
    }
  }
  if (argc < 2) {
    usage(stderr);
    return 1;
  }
  const std::string command_name = argv[1];
  try {
    const Command* command = find_command(command_name);
    if (command == nullptr) {
      std::fprintf(stderr, "error: unknown command '%s'\n\n",
                   command_name.c_str());
      usage(stderr);
      return 1;
    }
    Options opt = parse_options(argc, argv, 2);
    // A stray bare word after a flags-only command is almost certainly
    // a typo'd flag value, so fail loudly instead of silently ignoring
    // it.
    if (!command->takes_positional && !opt.positional.empty())
      throw std::invalid_argument("unexpected argument '" +
                                  opt.positional.front() + "'");

    // Observability sinks live here so every command shares the same
    // export path; the registries outlive all components they observe.
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace;
    if (!opt.metrics_out.empty()) opt.metrics = &metrics;
    if (!opt.trace_out.empty()) opt.trace = &trace;

    const int rc = command->run(opt);
    if (rc != 0) return rc;
    if (opt.metrics != nullptr &&
        write_text_file(opt.metrics_out, metrics.to_json(), "metrics") != 0)
      return 1;
    if (opt.trace != nullptr &&
        write_text_file(opt.trace_out, trace.chrome_json(), "trace") != 0)
      return 1;
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
