#!/usr/bin/env python3
"""Equivalence gate over the deterministic sections of two BENCH_*.json
files.

The rows (measured-vs-paper), counters, gauges, and histograms sections
are part of the determinism contract: for a fixed seed and scale they
must not depend on the thread count, the --cache mode (the memo caches
only ever skip work, never change results — docs/performance.md), or
the --ring-index mode (the eytzinger ring index and its kept sorted-scan
oracle resolve identical responsible sets by contract). CI's bench-smoke
job runs one bench twice per knob — --cache=on vs off, and
--ring-index=on vs off for the ring ablation — and feeds both files
here; any divergence fails the build.

wall_clock, peak_rss_bytes, benchmarks, cache, and index are perf
telemetry (they legitimately differ run to run — "index" in particular
records oracle-vs-indexed timings) and are deliberately ignored.

Usage:  diff_bench_rows.py BASELINE.json CANDIDATE.json [SECTION ...]

With no SECTION arguments every deterministic section is compared;
naming sections restricts the comparison (each must be one of:
rows, counters, gauges, histograms).
"""

import json
import sys

DETERMINISTIC_SECTIONS = ("rows", "counters", "gauges", "histograms")


def canonical_sections(path, sections):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    # Canonical re-encoding so the comparison is over content, not
    # incidental whitespace; the writer is already canonical, so this
    # is equality of the emitted bytes in practice.
    return {
        section: json.dumps(doc.get(section), sort_keys=True,
                            separators=(",", ":"))
        for section in sections
    }


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline, candidate = argv[1], argv[2]
    sections = tuple(argv[3:]) or DETERMINISTIC_SECTIONS
    for section in sections:
        if section not in DETERMINISTIC_SECTIONS:
            print(f"error: unknown section {section!r} (deterministic "
                  f"sections: {', '.join(DETERMINISTIC_SECTIONS)})",
                  file=sys.stderr)
            return 2
    a = canonical_sections(baseline, sections)
    b = canonical_sections(candidate, sections)
    failed = False
    for section in sections:
        if a[section] != b[section]:
            failed = True
            print(f"FAIL section {section!r} differs:\n"
                  f"  {baseline}: {a[section][:200]}\n"
                  f"  {candidate}: {b[section][:200]}", file=sys.stderr)
        else:
            print(f"OK   section {section!r} identical")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
