// Shared between the torsim CLI (serve/load/query commands) and the
// torsimd daemon binary: one place builds the WorldSession config and
// renders result CSVs, so the daemon-served answers and the batch-CLI
// answers are byte-comparable by construction (the serve equivalence
// gate; docs/serving.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "serve/proto.hpp"
#include "serve/session.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace torsim::tools {

/// The knobs that shape the resident world; torsimd and `torsim
/// serve`/`torsim query` must agree on every one of them for the
/// equivalence gate to hold.
struct ServeParams {
  double scale = 0.1;
  std::uint64_t seed = 20130204;
  int services = 16;
  int warmup_hours = 6;
  int threads = 0;
  fault::FaultPlan faults{};
};

inline serve::SessionConfig make_session_config(
    const ServeParams& params, obs::MetricsRegistry* metrics) {
  serve::SessionConfig config;
  config.world.seed = params.seed;
  config.world.honest_relays =
      std::max(50, static_cast<int>(3000 * params.scale));
  config.world.threads = params.threads;
  config.world.faults = params.faults;
  config.world.metrics = metrics;
  config.services = params.services;
  config.warmup_hours = params.warmup_hours;
  config.threads = params.threads;
  config.metrics = metrics;
  return config;
}

/// One row per request, ordered by sequence; the golden artifact both
/// the daemon path and the batch-CLI path must render byte-identically.
inline void write_result_csv(util::CsvWriter& csv,
                             const std::vector<serve::Request>& requests,
                             const std::vector<serve::Response>& responses) {
  csv.row({"seq", "id", "kind", "status", "data"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const serve::Response& response = responses[i];
    const std::string payload =
        response.status == serve::Status::kError
            ? response.error
            : util::join(response.data, "|");
    csv.typed_row(i, requests[i].id,
                  std::string(serve::query_kind_name(requests[i].kind)),
                  std::string(serve::status_name(response.status)), payload);
  }
}

}  // namespace torsim::tools
