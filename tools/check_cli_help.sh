#!/bin/sh
# Drift gate for the torsim command table: every command that
# `torsim --list-commands` enumerates must accept --help with exit 0.
# Because --list-commands and usage() read the same kCommands table,
# this catches a command wired into dispatch but broken under --help
# (or a table entry with no working handler) the moment it lands.
set -eu

bin="$1"
list="$("$bin" --list-commands)"
if [ -z "$list" ]; then
  echo "error: --list-commands printed nothing" >&2
  exit 1
fi
for command in $list; do
  if ! "$bin" "$command" --help >/dev/null; then
    echo "error: '$bin $command --help' did not exit 0" >&2
    exit 1
  fi
done
echo "checked --help for $(echo "$list" | wc -l) commands"
