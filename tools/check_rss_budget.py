#!/usr/bin/env python3
"""Peak-RSS regression gate for the bench-smoke CI job.

Compares the peak_rss_bytes of a freshly produced BENCH_*.json document
against a committed baseline (bench/baselines/*.json) and fails when
the measured peak exceeds the baseline by more than the tolerance
(default +10%). The baseline is intentionally set above the observed
peak on a quiet machine, so the gate catches data-layout regressions
(docs/data-layout.md) without flaking on allocator or kernel noise;
re-baseline deliberately when the population legitimately grows.

Usage:  check_rss_budget.py --baseline BASELINE.json \\
                            --current BENCH_population.json \\
                            [--tolerance 0.10]

Exits non-zero and prints the violation if the current document's peak
RSS regresses past baseline * (1 + tolerance), or if the documents
disagree on name/scale (comparing different fixtures is never a pass).
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (bench/baselines/)")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json document")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional growth over the baseline "
                             "(default 0.10 = +10%%)")
    args = parser.parse_args(argv[1:])

    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL unreadable or invalid JSON: {err}", file=sys.stderr)
        return 2

    failed = False
    for key in ("name", "scale"):
        if baseline.get(key) != current.get(key):
            print(f"FAIL {key} mismatch: baseline {baseline.get(key)!r} "
                  f"vs current {current.get(key)!r}", file=sys.stderr)
            failed = True

    peak = current.get("peak_rss_bytes")
    base = baseline.get("peak_rss_bytes")
    for label, value in (("baseline", base), ("current", peak)):
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            print(f"FAIL {label} peak_rss_bytes must be a positive integer, "
                  f"got {value!r}", file=sys.stderr)
            failed = True
    if failed:
        return 1

    limit = int(base * (1.0 + args.tolerance))
    if peak > limit:
        print(f"FAIL peak_rss_bytes {peak} exceeds baseline {base} "
              f"+{args.tolerance:.0%} (limit {limit}); if the growth is "
              f"intentional, re-baseline {args.baseline}", file=sys.stderr)
        return 1

    print(f"OK   peak_rss_bytes {peak} within baseline {base} "
          f"+{args.tolerance:.0%} (limit {limit})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
