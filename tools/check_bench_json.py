#!/usr/bin/env python3
"""Schema check for the BENCH_<name>.json telemetry files.

Validates the `torsim-bench-v1` layout written by obs::BenchReport
(src/obs/report.cpp): identity header, measured-vs-paper rows with the
paper==0 -> ratio null rule, google-benchmark timings, wall-clock
phases, peak RSS, the memo-cache hit/miss telemetry, and the metrics
sections. CI's bench-smoke job runs this over every emitted file and
fails the build on malformed output.

Usage:  check_bench_json.py FILE_OR_DIR [FILE_OR_DIR ...]

Directories are searched for BENCH_*.json. Exits non-zero and prints
one line per violation if any file fails.
"""

import json
import numbers
import os
import sys


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def error(self, message):
        self.errors.append(f"{self.path}: {message}")

    def require(self, condition, message):
        if not condition:
            self.error(message)
        return condition

    def is_num(self, value):
        # bool is an int subclass; a bare true/false is never a number here.
        return isinstance(value, numbers.Real) and not isinstance(value, bool)

    def is_int(self, value):
        return isinstance(value, int) and not isinstance(value, bool)

    def check_rows(self, rows):
        if not self.require(isinstance(rows, list), "rows must be a list"):
            return
        for i, row in enumerate(rows):
            where = f"rows[{i}]"
            if not self.require(isinstance(row, dict), f"{where} not an object"):
                continue
            for key in ("section", "label"):
                self.require(isinstance(row.get(key), str),
                             f"{where}.{key} must be a string")
            for key in ("measured", "paper"):
                self.require(self.is_num(row.get(key)),
                             f"{where}.{key} must be a number")
            if "ratio" not in row:
                self.error(f"{where} missing ratio")
            elif self.is_num(row.get("paper")):
                # The n/a rule: no paper baseline -> ratio is null, never 0.
                if row["paper"] == 0:
                    self.require(row["ratio"] is None,
                                 f"{where}.ratio must be null when paper == 0")
                else:
                    self.require(self.is_num(row["ratio"]),
                                 f"{where}.ratio must be a number")

    def check_benchmarks(self, benchmarks):
        if not self.require(isinstance(benchmarks, list),
                            "benchmarks must be a list"):
            return
        for i, run in enumerate(benchmarks):
            where = f"benchmarks[{i}]"
            if not self.require(isinstance(run, dict), f"{where} not an object"):
                continue
            self.require(isinstance(run.get("name"), str),
                         f"{where}.name must be a string")
            for key in ("real_time_seconds", "cpu_time_seconds"):
                value = run.get(key)
                self.require(self.is_num(value) and value >= 0,
                             f"{where}.{key} must be a non-negative number")
            iterations = run.get("iterations")
            self.require(self.is_int(iterations) and iterations >= 0,
                         f"{where}.iterations must be a non-negative integer")

    def check_wall_clock(self, wall_clock):
        if not self.require(isinstance(wall_clock, dict),
                            "wall_clock must be an object"):
            return
        phases = wall_clock.get("phases")
        if self.require(isinstance(phases, dict),
                        "wall_clock.phases must be an object"):
            for name, seconds in phases.items():
                self.require(self.is_num(seconds) and seconds >= 0,
                             f"wall_clock.phases[{name!r}] must be >= 0")
        total = wall_clock.get("total_seconds")
        self.require(self.is_num(total) and total >= 0,
                     "wall_clock.total_seconds must be a non-negative number")

    def check_cache(self, cache):
        if not self.require(isinstance(cache, dict),
                            "cache must be an object"):
            return
        self.require(isinstance(cache.get("enabled"), bool),
                     "cache.enabled must be a boolean")
        caches = cache.get("caches")
        if not self.require(isinstance(caches, dict),
                            "cache.caches must be an object"):
            return
        for name, stats in caches.items():
            where = f"cache.caches[{name!r}]"
            if not self.require(isinstance(stats, dict),
                                f"{where} not an object"):
                continue
            for key in ("hits", "misses", "evictions"):
                value = stats.get(key)
                self.require(self.is_int(value) and value >= 0,
                             f"{where}.{key} must be a non-negative integer")

    def check_index(self, index):
        # Optional section: only the ring ablation bench carries it (the
        # eytzinger-index-vs-oracle cold-path telemetry), but when
        # present anywhere it must be well-formed. Like wall_clock it is
        # perf telemetry, never golden-compared.
        if index is None:
            return
        if not self.require(isinstance(index, dict),
                            "index must be an object"):
            return
        self.require(isinstance(index.get("enabled"), bool),
                     "index.enabled must be a boolean")
        kernels = index.get("kernels")
        if not self.require(isinstance(kernels, dict),
                            "index.kernels must be an object"):
            return
        for name, stat in kernels.items():
            where = f"index.kernels[{name!r}]"
            if not self.require(isinstance(stat, dict),
                                f"{where} not an object"):
                continue
            for key in ("oracle_seconds", "indexed_seconds"):
                value = stat.get(key)
                self.require(self.is_num(value) and value >= 0,
                             f"{where}.{key} must be a non-negative number")
            if "speedup" not in stat:
                self.error(f"{where} missing speedup")
            elif self.is_num(stat.get("indexed_seconds")):
                # The n/a rule again: an unmeasured indexed path has no
                # meaningful ratio -> speedup is null, never 0 or inf.
                if stat["indexed_seconds"] == 0:
                    self.require(
                        stat["speedup"] is None,
                        f"{where}.speedup must be null when "
                        f"indexed_seconds == 0")
                else:
                    self.require(self.is_num(stat["speedup"]),
                                 f"{where}.speedup must be a number")

    def check_serve(self, serve):
        # Optional section: only BENCH_serve.json carries it (the
        # daemon-path throughput/latency telemetry from bench_serve),
        # but when present anywhere it must be well-formed. Like
        # wall_clock it is perf telemetry, never golden-compared.
        if serve is None:
            return
        if not self.require(isinstance(serve, dict),
                            "serve must be an object"):
            return
        for key, floor in (("clients", 1), ("threads", 0), ("requests", 1),
                           ("retries", 0), ("reconnects", 0)):
            value = serve.get(key)
            self.require(self.is_int(value) and value >= floor,
                         f"serve.{key} must be an integer >= {floor}")
        seconds = serve.get("seconds")
        self.require(self.is_num(seconds) and seconds >= 0,
                     "serve.seconds must be a non-negative number")
        if "requests_per_second" not in serve:
            self.error("serve missing requests_per_second")
        elif self.is_num(seconds):
            # The n/a rule: an unmeasured run has no meaningful rate ->
            # requests_per_second is null, never 0 or inf.
            if seconds == 0:
                self.require(serve["requests_per_second"] is None,
                             "serve.requests_per_second must be null "
                             "when seconds == 0")
            else:
                rps = serve["requests_per_second"]
                self.require(self.is_num(rps) and rps >= 0,
                             "serve.requests_per_second must be a "
                             "non-negative number")
        latency = serve.get("latency_us")
        if not self.require(isinstance(latency, dict),
                            "serve.latency_us must be an object"):
            return
        edges = latency.get("edges")
        buckets = latency.get("buckets")
        ok_edges = self.require(
            isinstance(edges, list) and edges
            and all(self.is_int(e) for e in edges)
            and all(a < b for a, b in zip(edges, edges[1:])),
            "serve.latency_us.edges must be strictly increasing integers")
        ok_buckets = self.require(
            isinstance(buckets, list)
            and all(self.is_int(b) and b >= 0 for b in buckets),
            "serve.latency_us.buckets must be non-negative integers")
        if ok_edges and ok_buckets:
            self.require(len(buckets) == len(edges) + 1,
                         "serve.latency_us: need len(edges)+1 buckets")
        count = latency.get("count")
        if self.require(self.is_int(count) and count >= 0,
                        "serve.latency_us.count must be a non-negative "
                        "integer") and ok_buckets:
            self.require(sum(buckets) == count,
                         "serve.latency_us: bucket counts must sum to count")
        self.require(self.is_int(latency.get("sum")),
                     "serve.latency_us.sum must be an integer")
        quantiles = []
        for key in ("p50", "p90", "p99"):
            value = latency.get(key)
            if self.require(self.is_int(value) and value >= 0,
                            f"serve.latency_us.{key} must be a "
                            f"non-negative integer"):
                quantiles.append(value)
        if len(quantiles) == 3:
            self.require(quantiles[0] <= quantiles[1] <= quantiles[2],
                         "serve.latency_us: p50 <= p90 <= p99 must hold")

    def check_population(self, population, peak_rss_bytes):
        # Optional section: only BENCH_population.json carries it (the
        # SoA-vs-legacy data-layout telemetry from bench_population, see
        # docs/data-layout.md), but when present anywhere it must be
        # well-formed. Unlike the other perf sections this one carries a
        # gate: the document's own peak_rss_bytes must stay under the
        # peak_rss_budget_bytes ceiling the bench computed for its
        # scale, so a layout regression fails CI here.
        if population is None:
            return
        if not self.require(isinstance(population, dict),
                            "population must be an object"):
            return
        for key in ("services", "column_bytes", "index_bytes",
                    "interner_bytes", "interner_strings",
                    "legacy_record_bytes", "soa_rss_delta_bytes",
                    "legacy_rss_delta_bytes", "rss_reduction_bytes",
                    "arena_bytes", "arena_live_bytes", "arena_compactions"):
            value = population.get(key)
            if not self.require(self.is_int(value),
                                f"population.{key} must be an integer"):
                continue
            # rss_reduction_bytes is a difference of measured deltas and
            # the only field allowed to go negative (that IS the
            # regression signal, reported rather than rejected).
            if key != "rss_reduction_bytes":
                self.require(value >= 0,
                             f"population.{key} must be non-negative")
        legacy = population.get("legacy_rss_delta_bytes")
        soa = population.get("soa_rss_delta_bytes")
        reduction = population.get("rss_reduction_bytes")
        if all(self.is_int(v) for v in (legacy, soa, reduction)):
            self.require(reduction == legacy - soa,
                         "population.rss_reduction_bytes must equal "
                         "legacy_rss_delta_bytes - soa_rss_delta_bytes")
        live = population.get("arena_live_bytes")
        held = population.get("arena_bytes")
        if self.is_int(live) and self.is_int(held):
            self.require(live <= held,
                         "population.arena_live_bytes must not exceed "
                         "arena_bytes")
        budget = population.get("peak_rss_budget_bytes")
        if self.require(self.is_int(budget) and budget > 0,
                        "population.peak_rss_budget_bytes must be a "
                        "positive integer") and self.is_int(peak_rss_bytes):
            self.require(peak_rss_bytes <= budget,
                         f"peak_rss_bytes {peak_rss_bytes} exceeds "
                         f"population.peak_rss_budget_bytes {budget}")

    def check_scenarios(self, scenarios):
        # Optional section: only BENCH_scenarios.json carries it, but
        # when present anywhere it must be well-formed.
        if scenarios is None:
            return
        if not self.require(isinstance(scenarios, list),
                            "scenarios must be a list"):
            return
        self.require(len(scenarios) > 0, "scenarios must not be empty")
        seen = set()
        for i, entry in enumerate(scenarios):
            where = f"scenarios[{i}]"
            if not self.require(isinstance(entry, dict),
                                f"{where} not an object"):
                continue
            name = entry.get("name")
            if self.require(isinstance(name, str) and name,
                            f"{where}.name must be a non-empty string"):
                self.require(name not in seen,
                             f"{where}.name {name!r} is a duplicate")
                seen.add(name)
            for key in ("horizon_hours", "events_applied", "timeline_rows",
                        "services_migrated", "services_taken_down",
                        "services_added", "relays_injected",
                        "flash_fetches_ok", "flash_fetches_failed"):
                value = entry.get(key)
                self.require(self.is_int(value) and value >= 0,
                             f"{where}.{key} must be a non-negative integer")
            if self.is_int(entry.get("horizon_hours")):
                self.require(entry["horizon_hours"] > 0,
                             f"{where}.horizon_hours must be positive")

    def check_metrics(self, doc):
        for section in ("counters", "gauges"):
            values = doc.get(section)
            if not self.require(isinstance(values, dict),
                                f"{section} must be an object"):
                continue
            for name, value in values.items():
                self.require(self.is_int(value),
                             f"{section}[{name!r}] must be an integer")
        histograms = doc.get("histograms")
        if not self.require(isinstance(histograms, dict),
                            "histograms must be an object"):
            return
        for name, hist in histograms.items():
            where = f"histograms[{name!r}]"
            if not self.require(isinstance(hist, dict),
                                f"{where} not an object"):
                continue
            edges = hist.get("edges")
            buckets = hist.get("buckets")
            ok_edges = self.require(
                isinstance(edges, list) and edges
                and all(self.is_int(e) for e in edges)
                and all(a < b for a, b in zip(edges, edges[1:])),
                f"{where}.edges must be strictly increasing integers")
            ok_buckets = self.require(
                isinstance(buckets, list)
                and all(self.is_int(b) and b >= 0 for b in buckets),
                f"{where}.buckets must be non-negative integers")
            if ok_edges and ok_buckets:
                self.require(len(buckets) == len(edges) + 1,
                             f"{where}: need len(edges)+1 buckets")
            count = hist.get("count")
            if self.require(self.is_int(count),
                            f"{where}.count must be an integer") and ok_buckets:
                self.require(sum(buckets) == count,
                             f"{where}: bucket counts must sum to count")
            self.require(self.is_int(hist.get("sum")),
                         f"{where}.sum must be an integer")

    def check(self, doc):
        if not self.require(isinstance(doc, dict),
                            "top level must be an object"):
            return
        self.require(doc.get("schema") == "torsim-bench-v1",
                     f"schema must be 'torsim-bench-v1', got {doc.get('schema')!r}")
        name = doc.get("name")
        if self.require(isinstance(name, str) and name, "name must be set"):
            expected = f"BENCH_{name}.json"
            self.require(os.path.basename(self.path) == expected,
                         f"name {name!r} does not match filename "
                         f"(expected {expected})")
        scale = doc.get("scale")
        self.require(self.is_num(scale) and scale > 0,
                     "scale must be a positive number")
        self.check_rows(doc.get("rows"))
        self.check_benchmarks(doc.get("benchmarks"))
        self.check_wall_clock(doc.get("wall_clock"))
        rss = doc.get("peak_rss_bytes")
        self.require(self.is_int(rss) and rss > 0,
                     "peak_rss_bytes must be a positive integer")
        self.check_cache(doc.get("cache"))
        self.check_index(doc.get("index"))
        self.check_serve(doc.get("serve"))
        self.check_population(doc.get("population"), rss)
        self.check_scenarios(doc.get("scenarios"))
        self.check_metrics(doc)


def collect(args):
    paths = []
    for arg in args:
        if os.path.isdir(arg):
            found = sorted(
                os.path.join(arg, f) for f in os.listdir(arg)
                if f.startswith("BENCH_") and f.endswith(".json"))
            if not found:
                print(f"error: no BENCH_*.json under {arg}", file=sys.stderr)
                sys.exit(2)
            paths.extend(found)
        else:
            paths.append(arg)
    return paths


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in collect(argv[1:]):
        checker = Checker(path)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            checker.error(f"unreadable or invalid JSON: {err}")
        else:
            checker.check(doc)
        if checker.errors:
            failed = True
            for line in checker.errors:
                print(f"FAIL {line}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
