// torsimd — the standalone warm-world serving daemon. Equivalent to
// `torsim serve` (both funnel through tools/serve_common.hpp, so the
// resident world they build is identical); exists so deployments and
// the CI serve-smoke job have a single-purpose binary with a small
// flag surface. Protocol and determinism contract: docs/serving.md.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve_common.hpp"
#include "util/logging.hpp"
#include "util/memo.hpp"

namespace {

using namespace torsim;

struct DaemonOptions {
  std::string socket;
  tools::ServeParams params{};
  int batch_max = 256;
  int queue_cap = 1024;
  std::string chaos_spec;
  std::string metrics_out;
  std::string telemetry_out;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "torsimd — torsim warm-world query daemon (docs/serving.md)\n\n"
      "usage: torsimd --socket PATH [options]\n\n"
      "  --socket PATH       unix-domain socket to listen on (required)\n"
      "  --scale S           world scale (default 0.1; relays = 3000*S)\n"
      "  --seed N            world seed (default 20130204)\n"
      "  --services N        resident hidden services (default 16)\n"
      "  --hours N           warmup hours before serving (default 6)\n"
      "  --threads T         batch fan-out width (0 = hardware threads)\n"
      "  --cache MODE        on|off memoization (default on)\n"
      "  --faults SPEC       world-side fault plan (docs/fault-injection.md)\n"
      "  --chaos SPEC        connection-level chaos at the socket edge\n"
      "  --batch-max N       requests executed per tick (default 256)\n"
      "  --queue-cap N       admission-control queue bound (default 1024)\n"
      "  --metrics-out FILE  deterministic session metrics JSON at exit\n"
      "  --telemetry-out FILE  scheduling-dependent edge telemetry JSON\n"
      "  --log-level LEVEL   debug|info|warn|error|off (default warn)\n");
}

util::LogLevel parse_log_level(const std::string& text) {
  if (text == "debug") return util::LogLevel::kDebug;
  if (text == "info") return util::LogLevel::kInfo;
  if (text == "warn") return util::LogLevel::kWarn;
  if (text == "error") return util::LogLevel::kError;
  if (text == "off") return util::LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + text +
                              "' (expected debug|info|warn|error|off)");
}

bool parse_cache_mode(const std::string& text) {
  if (text == "on") return true;
  if (text == "off") return false;
  throw std::invalid_argument("unknown cache mode '" + text +
                              "' (expected on|off)");
}

DaemonOptions parse_options(int argc, char** argv) {
  DaemonOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--socket") opt.socket = next();
    else if (arg == "--scale") opt.params.scale = std::stod(next());
    else if (arg == "--seed") opt.params.seed = std::stoull(next());
    else if (arg == "--services") opt.params.services = std::stoi(next());
    else if (arg == "--hours") opt.params.warmup_hours = std::stoi(next());
    else if (arg == "--threads") opt.params.threads = std::stoi(next());
    else if (arg == "--cache") util::set_memo_enabled(parse_cache_mode(next()));
    else if (arg == "--faults")
      opt.params.faults = fault::FaultPlan::parse(next());
    else if (arg == "--chaos") opt.chaos_spec = next();
    else if (arg == "--batch-max") opt.batch_max = std::stoi(next());
    else if (arg == "--queue-cap") opt.queue_cap = std::stoi(next());
    else if (arg == "--metrics-out") opt.metrics_out = next();
    else if (arg == "--telemetry-out") opt.telemetry_out = next();
    else if (arg == "--log-level") util::set_log_level(parse_log_level(next()));
    else throw std::invalid_argument("unknown option " + arg);
  }
  return opt;
}

int write_text_file(const std::string& path, const std::string& text,
                    const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s to %s\n", what, path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    }
  }
  try {
    const DaemonOptions opt = parse_options(argc, argv);
    if (opt.socket.empty()) {
      std::fprintf(stderr, "error: torsimd needs --socket PATH\n\n");
      usage(stderr);
      return 1;
    }
    obs::MetricsRegistry metrics;
    obs::MetricsRegistry telemetry;
    serve::WorldSession session(tools::make_session_config(
        opt.params, opt.metrics_out.empty() ? nullptr : &metrics));
    serve::ServerConfig sc;
    sc.socket_path = opt.socket;
    sc.max_batch = opt.batch_max;
    sc.queue_capacity = opt.queue_cap;
    if (!opt.chaos_spec.empty())
      sc.chaos = fault::FaultPlan::parse(opt.chaos_spec);
    sc.telemetry = &telemetry;
    serve::Server server(session, sc);
    server.start();
    std::printf("torsimd listening on %s (services %d, warmup %dh)\n",
                server.socket_path().c_str(), opt.params.services,
                opt.params.warmup_hours);
    std::fflush(stdout);
    server.run();
    std::printf("torsimd: event loop exited\n");
    if (!opt.metrics_out.empty() &&
        write_text_file(opt.metrics_out, metrics.to_json(), "metrics") != 0)
      return 1;
    if (!opt.telemetry_out.empty() &&
        write_text_file(opt.telemetry_out, telemetry.to_json(),
                        "telemetry") != 0)
      return 1;
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
