// captures pass: parallel-region write-through-reference detection.
//
// The deterministic parallel engine (util::parallel_for/parallel_map)
// is only order-independent when each task writes exclusively through
// its own index: `out[i] = ...`. A lambda that captures a name by
// reference ([&], [&x]) and writes it WITHOUT a per-task subscript
// commits results in scheduler order — the bug class the serial-
// equivalence goldens only catch when the schedule happens to differ.
//
// The pass finds each parallel_for/parallel_map call site, resolves its
// lambda argument (inline, or one level of `const auto body = [...]`
// indirection — the shape every call site in this tree uses), and flags
// write expressions whose base name is by-ref captured and whose
// subscript chain never mentions the lambda's index parameter. Writes
// are `=`/compound-assign, `++`/`--`, and calls to a known mutating
// container/atomic method.
#include "detlint/detlint.hpp"

#include <cctype>

#include "detlint/lex.hpp"

namespace detlint {
namespace {

using lex::find_word;
using lex::is_ident;
using lex::is_keyword;
using lex::match_forward;
using lex::read_ident;
using lex::skip_spaces;
using lex::word_at;

const std::vector<std::string>& mutating_methods() {
  static const std::vector<std::string> kMethods = {
      "push_back", "emplace_back", "emplace", "insert", "erase", "clear",
      "resize", "reserve", "assign", "append", "pop_back", "push_front",
      "pop_front", "store", "fetch_add", "fetch_sub", "reset", "swap"};
  return kMethods;
}

/// Splits `s` at top-level commas (depth 0 w.r.t. ()/[]/{}/<> pairs —
/// '<' handled loosely, good enough for capture and argument lists).
std::vector<std::string> split_top_level(const std::string& s) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    else if (c == ',' && depth == 0) {
      parts.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  parts.push_back(s.substr(begin));
  return parts;
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

struct CaptureList {
  bool default_ref = false;                // [&]
  std::set<std::string> by_ref;            // [&x] / [&x = expr]
  std::set<std::string> by_value;          // [x] / [=] entries
};

CaptureList parse_captures(const std::string& inside) {
  CaptureList caps;
  for (const auto& raw : split_top_level(inside)) {
    const std::string item = trim(raw);
    if (item.empty()) continue;
    if (item == "&") { caps.default_ref = true; continue; }
    if (item == "=" || item == "this" || item == "*this") continue;
    std::size_t i = 0;
    bool by_ref = false;
    if (item[0] == '&') { by_ref = true; i = skip_spaces(item, 1); }
    if (i >= item.size() || !is_ident(item[i])) continue;
    const std::string name = read_ident(item, i);
    (by_ref ? caps.by_ref : caps.by_value).insert(name);
  }
  return caps;
}

/// Identifiers that look locally declared inside `body`: an identifier
/// directly preceded by another identifier (a type name), by `>`/`&`/
/// `*` (template/ref/pointer declarators), or inside a structured
/// binding. Over-approximates (`a * b` marks b) — that direction only
/// makes the check quieter, never noisier.
std::set<std::string> local_declarations(const std::string& body) {
  std::set<std::string> locals;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (!is_ident(body[i]) ||
        std::isdigit(static_cast<unsigned char>(body[i])) != 0 ||
        (i > 0 && is_ident(body[i - 1])))
      continue;
    const std::string ident = read_ident(body, i);
    const std::size_t prev = lex::prev_non_space(body, i);
    if (prev != std::string::npos) {
      const char p = body[prev];
      bool declared = false;
      if (p == '>' || p == '&' || p == '*') {
        declared = true;
      } else if (is_ident(p)) {
        std::size_t b = prev;
        while (b > 0 && is_ident(body[b - 1])) --b;
        const std::string prev_word = body.substr(b, prev - b + 1);
        static const std::vector<std::string> kTypeKeywords = {
            "auto", "bool", "char", "int", "long", "short", "double",
            "float", "unsigned", "signed", "const", "size_t"};
        if (!is_keyword(prev_word) ||
            std::find(kTypeKeywords.begin(), kTypeKeywords.end(),
                      prev_word) != kTypeKeywords.end())
          declared = true;
      }
      if (declared && !is_keyword(ident)) locals.insert(ident);
    }
    i += ident.size() - 1;
  }
  // Structured bindings: auto& [a, b] = ...;
  for (std::size_t pos = find_word(body, "auto", 0);
       pos != std::string::npos; pos = find_word(body, "auto", pos + 1)) {
    std::size_t i = skip_spaces(body, pos + 4);
    while (i < body.size() && (body[i] == '&' || body[i] == '*')) ++i;
    i = skip_spaces(body, i);
    if (i >= body.size() || body[i] != '[') continue;
    const std::size_t close = match_forward(body, i, '[', ']');
    if (close == std::string::npos) continue;
    for (const auto& ident :
         lex::identifiers_in(body.substr(i + 1, close - i - 2)))
      locals.insert(ident);
  }
  return locals;
}

/// True when `s[pos..]` starts an assignment operator (but not ==, <=,
/// >=, !=, or the second half of one).
bool is_assignment_at(const std::string& s, std::size_t pos) {
  if (pos >= s.size()) return false;
  const char c = s[pos];
  const char next = pos + 1 < s.size() ? s[pos + 1] : '\0';
  if (c == '=') return next != '=';
  if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
       c == '&' || c == '|' || c == '^') &&
      next == '=')
    return pos + 2 >= s.size() || s[pos + 2] != '=';  // excludes <=, >=
  if ((c == '<' && next == '<') || (c == '>' && next == '>'))
    return pos + 2 < s.size() && s[pos + 2] == '=';
  return false;
}

struct Write {
  std::string base;      // the captured name being written
  std::size_t pos = 0;   // offset of the base identifier
  bool indexed = false;  // some subscript mentions the index param
  std::string how;       // "assignment", "increment", "call to .foo()"
};

/// Collects write expressions in `body` (offsets relative to body).
std::vector<Write> find_writes(const std::string& body,
                               const std::string& index_param) {
  std::vector<Write> writes;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (!is_ident(body[i]) ||
        std::isdigit(static_cast<unsigned char>(body[i])) != 0 ||
        (i > 0 && is_ident(body[i - 1])))
      continue;
    const std::string base = read_ident(body, i);
    const std::size_t start = i;
    i += base.size() - 1;
    if (is_keyword(base)) continue;

    const std::size_t prev = lex::prev_non_space(body, start);
    // Member selections are not base names: `out.stage = ...` writes
    // through `out`, whose own chain walk starts at `out`.
    if (prev != std::string::npos &&
        (body[prev] == '.' ||
         (body[prev] == '>' && prev >= 1 && body[prev - 1] == '-')))
      continue;

    // Prefix increment/decrement.
    if (prev != std::string::npos && prev >= 1 &&
        ((body[prev] == '+' && body[prev - 1] == '+') ||
         (body[prev] == '-' && body[prev - 1] == '-'))) {
      writes.push_back({base, start, false, "increment of '" + base + "'"});
      continue;
    }

    // Walk the postfix chain: subscripts and member selections.
    std::size_t p = start + base.size();
    bool indexed = false;
    std::string member;
    while (true) {
      p = skip_spaces(body, p);
      if (p >= body.size()) break;
      if (body[p] == '[') {
        const std::size_t close = match_forward(body, p, '[', ']');
        if (close == std::string::npos) break;
        if (!index_param.empty()) {
          const std::string sub = body.substr(p + 1, close - p - 2);
          if (find_word(sub, index_param, 0) != std::string::npos)
            indexed = true;
        }
        p = close;
        member.clear();
        continue;
      }
      if (body[p] == '.' ||
          (body[p] == '-' && p + 1 < body.size() && body[p + 1] == '>')) {
        const std::size_t after = body[p] == '.' ? p + 1 : p + 2;
        const std::size_t m = skip_spaces(body, after);
        if (m >= body.size() || !is_ident(body[m])) break;
        member = read_ident(body, m);
        p = m + member.size();
        continue;
      }
      break;
    }
    if (p >= body.size()) continue;

    if (is_assignment_at(body, p)) {
      writes.push_back({base, start, indexed,
                        "assignment through '" + base + "'"});
    } else if (p + 1 < body.size() &&
               ((body[p] == '+' && body[p + 1] == '+') ||
                (body[p] == '-' && body[p + 1] == '-'))) {
      writes.push_back({base, start, indexed,
                        "increment of '" + base + "'"});
    } else if (body[p] == '(' && !member.empty()) {
      const auto& methods = mutating_methods();
      if (std::find(methods.begin(), methods.end(), member) !=
          methods.end()) {
        writes.push_back({base, start, indexed,
                          "call to '." + member + "(...)'"});
      }
    }
  }
  return writes;
}

/// Analyzes one lambda whose '[' sits at `lbracket` in `code`; pushes
/// findings for unsafe writes to by-ref captures.
void analyze_lambda(const std::string& path, const std::string& code,
                    const std::vector<std::size_t>& lines,
                    std::size_t lbracket, std::vector<Finding>& out) {
  const std::size_t cap_close = match_forward(code, lbracket, '[', ']');
  if (cap_close == std::string::npos) return;
  const CaptureList caps =
      parse_captures(code.substr(lbracket + 1, cap_close - lbracket - 2));
  if (!caps.default_ref && caps.by_ref.empty()) return;

  std::size_t p = skip_spaces(code, cap_close);
  std::set<std::string> params;
  std::string index_param;
  if (p < code.size() && code[p] == '(') {
    const std::size_t close = match_forward(code, p, '(', ')');
    if (close == std::string::npos) return;
    const auto parts =
        split_top_level(code.substr(p + 1, close - p - 2));
    for (std::size_t k = 0; k < parts.size(); ++k) {
      const auto idents = lex::identifiers_in(parts[k]);
      std::string name;
      for (const auto& ident : idents)
        if (!is_keyword(ident) || ident == "auto") name = ident;
      if (name.empty() || name == "auto") continue;
      params.insert(name);
      if (k == 0) index_param = name;
    }
    p = skip_spaces(code, close);
  }
  // Optional trailing return type, mutable, noexcept.
  while (p < code.size() && code[p] != '{') ++p;
  if (p >= code.size()) return;
  const std::size_t body_end = match_forward(code, p, '{', '}');
  if (body_end == std::string::npos) return;
  const std::string body = code.substr(p + 1, body_end - p - 2);
  const std::size_t body_base = p + 1;

  const std::set<std::string> locals = local_declarations(body);
  for (const Write& w : find_writes(body, index_param)) {
    if (w.indexed) continue;
    if (params.count(w.base) != 0 || locals.count(w.base) != 0) continue;
    const bool explicit_ref = caps.by_ref.count(w.base) != 0;
    const bool default_ref =
        caps.default_ref && caps.by_value.count(w.base) == 0;
    if (!explicit_ref && !default_ref) continue;
    out.push_back(
        {path, lex::line_of(lines, body_base + w.pos), "ref-capture-write",
         w.how + " inside a parallel_for/parallel_map lambda mutates "
         "by-ref-captured state without a per-task '" +
         (index_param.empty() ? std::string("index") : index_param) +
         "' subscript; tasks commit in scheduler order — write through "
         "a per-index slot instead (see docs/concurrency.md)",
         false, "", "captures", w.base});
  }
}

}  // namespace

std::vector<Finding> check_captures(const std::string& path,
                                    const std::string& content) {
  const std::string code = strip_comments_and_strings(content);
  const std::vector<std::size_t> lines = lex::index_lines(code);
  std::vector<Finding> out;

  static const std::vector<std::string> kEntries = {"parallel_for",
                                                    "parallel_map"};
  std::set<std::size_t> analyzed;  // lambda '[' offsets, deduped
  for (const auto& entry : kEntries) {
    for (std::size_t pos = find_word(code, entry, 0);
         pos != std::string::npos; pos = find_word(code, entry, pos + 1)) {
      const std::size_t open = skip_spaces(code, pos + entry.size());
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = match_forward(code, open, '(', ')');
      if (close == std::string::npos) continue;

      const std::string args = code.substr(open + 1, close - open - 2);
      std::size_t arg_begin = open + 1;
      for (const auto& raw : split_top_level(args)) {
        const std::string arg = trim(raw);
        const std::size_t local_off = raw.find_first_not_of(" \t\n");
        const std::size_t abs =
            local_off == std::string::npos ? arg_begin
                                           : arg_begin + local_off;
        if (!arg.empty() && arg[0] == '[') {
          if (analyzed.insert(abs).second)
            analyze_lambda(path, code, lines, abs, out);
        } else if (!arg.empty() && is_ident(arg[0]) &&
                   read_ident(arg, 0).size() == arg.size()) {
          // One level of named-lambda indirection: `name = [...]`.
          for (std::size_t d = find_word(code, arg, 0);
               d != std::string::npos && d < pos;
               d = find_word(code, arg, d + 1)) {
            std::size_t q = skip_spaces(code, d + arg.size());
            if (q >= code.size() || code[q] != '=') continue;
            q = skip_spaces(code, q + 1);
            if (q < code.size() && code[q] == '[') {
              if (analyzed.insert(q).second)
                analyze_lambda(path, code, lines, q, out);
              break;
            }
          }
        }
        arg_begin += raw.size() + 1;  // past the comma
      }
    }
  }
  return out;
}

}  // namespace detlint
