// Safe counterparts to bad_captures.cpp: every by-ref write lands in
// a per-shard slot subscripted by the lambda's index parameter, or the
// capture is by value. The captures pass must stay silent here.
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace fixture {

void sharded_accumulate(std::vector<int>& partials, std::size_t n) {
  torsim::util::parallel_for(n, 4, [&](std::size_t shard) {
    partials[shard] += static_cast<int>(shard);  // per-shard slot: clean
  });
}

void value_capture(std::size_t n) {
  int seed = 7;
  torsim::util::parallel_for(n, 4, [seed](std::size_t shard) {
    int local = seed + static_cast<int>(shard);  // by-value + local: clean
    (void)local;
  });
}

}  // namespace fixture
