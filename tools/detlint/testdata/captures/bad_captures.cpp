// Fixture for the captures pass: by-ref captures written inside
// parallel_for / parallel_map lambdas without a per-shard index
// subscript. good_captures.cpp holds the safe counterparts.
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace fixture {

void unsafe_accumulate(std::vector<int>& out, std::size_t n) {
  int total = 0;
  torsim::util::parallel_for(n, 4, [&](std::size_t shard) {
    total += static_cast<int>(shard);  // FLAG: unsharded by-ref write
    out[shard] += 1;                   // indexed by shard: clean
  });
}

void unsafe_named_lambda(std::vector<int>& sink, std::size_t n) {
  std::size_t hits = 0;
  const auto body = [&](std::size_t i) {
    ++hits;                            // FLAG: unsharded by-ref write
    sink.push_back(static_cast<int>(i));  // FLAG: mutating method call
  };
  torsim::util::parallel_for(n, 4, body);
}

}  // namespace fixture
