// Fixture for the globals pass: every kind of mutable state the
// census must catch, plus the shapes it must NOT flag (const,
// namespace alias, function prototypes, allowlisted entries).
#include <atomic>
#include <filesystem>
#include <mutex>

namespace fs = std::filesystem;  // alias, not a variable: clean

namespace fixture {

int mutable_counter = 0;              // FLAG: namespace-scope mutable
bool enabled_flag = true;             // FLAG: namespace-scope mutable
std::atomic<int> pending{0};          // FLAG: namespace-scope mutable
thread_local int tls_scratch = 0;     // FLAG: thread_local mutable

const int kLimit = 4;                 // const: clean
constexpr double kRatio = 0.5;        // constexpr: clean
int allowed_state = 0;                // allowlisted in allowlist.txt

int free_function(int x);             // prototype, not a variable: clean

struct Holder {
  static int shared_calls;            // FLAG: class-scope mutable static
  static const int kMax = 8;          // const: clean
  int per_instance = 0;               // instance member: clean
};

inline int bump() {
  static int calls = 0;               // FLAG: function-local static
  int local = 0;                      // plain local: clean
  return ++calls + local;
}

}  // namespace fixture
