// detlint self-test fixture for the PR-7 kernel idioms: the eytzinger
// ring-index descent and the lane-transposed SHA-1 batch lean on
// prefetch intrinsics, branch-free arithmetic, byte splicing, and
// fixed-size scratch arrays — none of which touch ambient state, so
// detlint must stay quiet on every one of them. The single std::rand()
// at the end is the canary proving the scanner actually processed the
// file. Never compiled and never scanned by the real lint run;
// tests/detlint_test.cpp feeds it through scan_file() directly.
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace fixture {

// Branch-free eytzinger descent with an explicit prefetch — the shape
// of RingIndex::first_after. Integer compares, shift/mask recovery, a
// conditional-subtract wrap: all deterministic, none may flag.
inline std::size_t eytzinger_descent(const std::vector<std::uint64_t>& eytz,
                                     std::uint64_t p) {
  const std::size_t n = eytz.size() - 1;
  std::size_t k = 1;
  while (k <= n) {
    if (k * 16 <= n) __builtin_prefetch(&eytz[k * 16]);
    k = 2 * k + (eytz[k] <= p ? 1 : 0);
  }
  while ((k & 1u) != 0) k >>= 1;
  k >>= 1;
  std::size_t rank = k + n;
  if (rank >= n) rank -= n;  // conditional subtract, not %
  return rank;
}

// Lane-transposed round loop with fixed scratch arrays — the shape of
// sha1_batch's compress_lanes. Rotates, per-lane state arrays, and
// memcpy/memset block splicing are all pure data movement.
inline void lane_rounds(std::uint32_t h[5][8],
                        const std::uint8_t* const blocks[], std::size_t lanes) {
  std::uint32_t w[80][8];
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t t = 0; t < 16; ++t) {
      std::uint32_t word = 0;
      std::memcpy(&word, blocks[lane] + 4 * t, 4);
      w[t][lane] = word;
    }
    for (std::size_t t = 16; t < 80; ++t) {
      const std::uint32_t x =
          w[t - 3][lane] ^ w[t - 8][lane] ^ w[t - 14][lane] ^ w[t - 16][lane];
      w[t][lane] = (x << 1) | (x >> 31);
    }
    h[0][lane] += w[79][lane];
  }
}

// Midstate-style buffered splice: memset padding, a 0x80 marker, and a
// big-endian length trailer written byte-by-byte.
inline void pad_block(std::array<std::uint8_t, 64>& block,
                      std::size_t used, std::uint64_t total_bits) {
  std::memset(block.data() + used, 0, block.size() - used);
  block[used] = 0x80;
  for (std::size_t i = 0; i < 8; ++i)
    block[56 + i] = static_cast<std::uint8_t>(total_bits >> (8 * (7 - i)));
}

// Canary: exactly one deliberate banned-call so the self-test can tell
// "scanner found nothing" from "scanner never ran".
inline int canary() { return std::rand(); }

}  // namespace fixture
