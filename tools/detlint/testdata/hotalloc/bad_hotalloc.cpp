// Fixture for the hotalloc pass: an annotated hot kernel that hits
// the allocator four distinct ways. good_hotalloc.cpp is the clean
// counterpart.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

// detlint: hot
int hot_descend(std::vector<int>& scratch, int x) {
  std::string label = "node";               // FLAG: std::string ctor
  scratch.push_back(x);                     // FLAG: container growth
  auto owned = std::make_unique<int>(x);    // FLAG: make_unique
  int* raw = new int(x);                    // FLAG: raw new
  const int result = *owned + *raw + static_cast<int>(label.size());
  delete raw;
  return result;
}

// Un-annotated code may allocate freely: clean.
std::string cold_label(int x) { return std::to_string(x); }

}  // namespace fixture
