// Clean counterpart to bad_hotalloc.cpp: the annotated kernel works
// entirely in caller-provided storage, and the allocating helper is
// un-annotated. The hotalloc pass must stay silent here (this file
// also backs the --json smoke test, which expects zero findings).
#include <cstddef>
#include <string>
#include <vector>

namespace fixture {

// detlint: hot
int hot_descend(const int* keys, std::size_t count, int x) {
  int best = 0;
  for (std::size_t i = 0; i < count; ++i)
    if (keys[i] <= x) best = keys[i];
  return best;
}

std::string cold_label(int x) { return std::to_string(x); }

}  // namespace fixture
