// Declared downward edge (hsdir -> util): clean.
#pragma once

#include "util/base.hpp"

namespace fixture::hsdir {
int ring_size();
}  // namespace fixture::hsdir
