// VIOLATION: hsdir -> stats is downward (stats sits in the bottom
// layer) but layers.txt declares no such edge — the pass must report
// an undeclared-edge here.
#include "stats/summary.hpp"

#include "hsdir/ring.hpp"

namespace fixture::hsdir {
int ring_size() { return fixture::stats::count(); }
}  // namespace fixture::hsdir
