// Bottom-layer module that hsdir/sideways.cpp reaches without a
// declared edge.
#pragma once

namespace fixture::stats {
int count();
}  // namespace fixture::stats
