// VIOLATION: "mystery" never appears in a layer directive — the pass
// must report an unknown-module for this include. The other two
// includes ride declared edges and stay clean.
#include "mystery/thing.hpp"

#include "hsdir/ring.hpp"
#include "util/base.hpp"

namespace fixture::sim {
int run() { return fixture::hsdir::ring_size() + fixture::util::base_value(); }
}  // namespace fixture::sim
