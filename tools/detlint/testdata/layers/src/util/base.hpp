// Clean bottom-layer header: no cross-module includes.
#pragma once

namespace fixture::util {
int base_value();
}  // namespace fixture::util
