// VIOLATION: util sits below hsdir, so this include climbs the layer
// chain — the pass must report a layer-backedge here.
#include "hsdir/ring.hpp"

#include "util/base.hpp"

namespace fixture::util {
int base_value() { return fixture::hsdir::ring_size(); }
}  // namespace fixture::util
