// detlint self-test fixture: every check must fire on this file, and
// every annotated line must be recognised as suppressed. Never compiled
// and never scanned by the real lint run (testdata paths are skipped by
// the CLI walker); tests/detlint_test.cpp feeds it through scan_file()
// directly and asserts on the findings.
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Widget {
  int id = 0;
};

// Minimal stand-in with the same shape as util::Rng, so the name pass
// registers `rng` below as a generator variable.
struct Rng {
  Rng child(int) const { return {}; }
  double uniform() { return 0.5; }
};

void banned_calls() {
  std::srand(42);
  int r = std::rand();
  std::time_t now = std::time(nullptr);
  const char* home = std::getenv("HOME");
  std::random_device rd;
  auto tick = std::chrono::steady_clock::now();
  (void)r; (void)now; (void)home; (void)rd; (void)tick;
}

void banned_call_suppressed() {
  // detlint-allow-next-line(banned-call) fixture: proves suppression
  std::time_t t = std::time(nullptr);
  (void)t;
  int r = std::rand();  // detlint-allow(banned-call) fixture inline
  (void)r;
}

// A member call named like a banned function must NOT be flagged.
struct HasTimeMember {
  long time() const { return 7; }
};
inline long member_call_not_flagged(const HasTimeMember& h) {
  return h.time();
}

void unordered_iteration() {
  std::unordered_map<std::string, int> tally;
  std::unordered_set<int> ids;
  for (const auto& [key, value] : tally) {
    (void)key; (void)value;
  }
  for (int id : ids) {
    (void)id;
  }
  auto it = tally.begin();
  (void)it;
}

void float_and_rng_in_parallel(double total) {
  // Lexical stand-in for util::parallel_for; detlint only sees names.
  auto parallel_for = [](int, int, auto) {};
  Rng rng;
  parallel_for(0, 4, [&](int i) {
    total += rng.uniform();        // float-accum AND rng-parallel
    Rng local = rng.child(i);      // child derivation: must NOT flag
    (void)local;
  });
  (void)total;
}

std::map<Widget*, int> by_pointer;  // pointer-key

}  // namespace fixture
