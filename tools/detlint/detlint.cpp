#include "detlint/detlint.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "detlint/lex.hpp"

namespace detlint {
namespace {

using lex::find_word;
using lex::index_lines;
using lex::is_ident;
using lex::identifiers_in;
using lex::line_of;
using lex::match_forward;
using lex::prev_non_space;
using lex::read_ident;
using lex::skip_spaces;
using lex::word_at;

/// Inline annotations parsed from the ORIGINAL text: which checks each
/// line allows, and which it allows on the following line.
struct Annotations {
  std::vector<std::set<std::string>> same_line;  // index = line - 1
  std::vector<std::set<std::string>> next_line;
};

std::set<std::string> parse_allow_list(const std::string& line,
                                       std::size_t paren) {
  std::set<std::string> checks;
  const std::size_t close = line.find(')', paren);
  if (close == std::string::npos) return checks;
  std::string inside = line.substr(paren + 1, close - paren - 1);
  std::stringstream ss(inside);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t b = item.find_first_not_of(" \t");
    const std::size_t e = item.find_last_not_of(" \t");
    if (b != std::string::npos) checks.insert(item.substr(b, e - b + 1));
  }
  return checks;
}

Annotations parse_annotations(const std::string& content) {
  Annotations ann;
  std::stringstream ss(content);
  std::string line;
  while (std::getline(ss, line)) {
    std::set<std::string> same;
    std::set<std::string> next;
    const std::string next_marker = "detlint-allow-next-line(";
    const std::string same_marker = "detlint-allow(";
    if (const auto pos = line.find(next_marker); pos != std::string::npos)
      next = parse_allow_list(line, pos + next_marker.size() - 1);
    else if (const auto p2 = line.find(same_marker); p2 != std::string::npos)
      same = parse_allow_list(line, p2 + same_marker.size() - 1);
    ann.same_line.push_back(std::move(same));
    ann.next_line.push_back(std::move(next));
  }
  return ann;
}

// ---------------------------------------------------------------------
// Determinism checks. Each pushes findings; suppression happens later.
// ---------------------------------------------------------------------

void check_banned_calls(const std::string& path, const std::string& code,
                        const std::vector<std::size_t>& lines,
                        std::vector<Finding>& out) {
  // Type-like names: any appearance is a hazard.
  static const std::vector<std::string> kBannedTypes = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "random_device"};
  const bool rng_impl = path.find("util/rng") != std::string::npos;
  // obs/stopwatch is the one designated wall-clock module (it feeds the
  // non-golden perf report, never simulator state); only steady_clock
  // is exempt there — system_clock/random_device still fire.
  const bool stopwatch_impl =
      path.find("obs/stopwatch") != std::string::npos;
  for (const auto& token : kBannedTypes) {
    if (token == "random_device" && rng_impl) continue;
    if (token == "steady_clock" && stopwatch_impl) continue;
    for (std::size_t pos = find_word(code, token, 0);
         pos != std::string::npos; pos = find_word(code, token, pos + 1)) {
      out.push_back({path, line_of(lines, pos), "banned-call",
                     token + " introduces ambient nondeterminism; derive "
                     "everything from the scenario seed (util::Rng) or "
                     "sim time (util::Clock)",
                     false, "", "", ""});
    }
  }

  // Function-like names: flagged only in call position, skipping member
  // calls (obj.time()) and non-std qualifications.
  static const std::vector<std::string> kBannedCalls = {
      "rand",  "srand",  "time",    "clock",  "getenv",
      "gmtime", "localtime", "mktime", "drand48", "rand_r"};
  for (const auto& token : kBannedCalls) {
    for (std::size_t pos = find_word(code, token, 0);
         pos != std::string::npos; pos = find_word(code, token, pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + token.size());
      if (after >= code.size() || code[after] != '(') continue;
      const std::size_t prev = prev_non_space(code, pos);
      if (prev != std::string::npos) {
        const char c = code[prev];
        // Member call (a.time(), p->clock()), declaration return type
        // (UnixTime time(), util::Clock& clock()), or pointer/ref.
        if (c == '.' || c == '>' || is_ident(c) || c == '&' || c == '*')
          continue;
        if (c == ':') {
          // Qualified: only std::X is the banned C/chrono entity.
          const bool is_std = prev >= 4 &&
                              code.compare(prev - 4, 5, "std::") == 0;
          if (!is_std) continue;
        }
      }
      out.push_back({path, line_of(lines, pos), "banned-call",
                     token + "() reads ambient state (wall clock, libc "
                     "PRNG, environment); use util::Rng / util::Clock "
                     "seeded by the scenario",
                     false, "", "", ""});
    }
  }
}

void check_unordered_iteration(const std::string& path,
                               const std::string& code,
                               const std::vector<std::size_t>& lines,
                               const NameSets& names,
                               std::vector<Finding>& out) {
  if (names.unordered.empty()) return;
  // Range-for whose range expression references an unordered container
  // without going through util::sorted_keys / util::sorted_items.
  for (std::size_t pos = find_word(code, "for", 0); pos != std::string::npos;
       pos = find_word(code, "for", pos + 1)) {
    const std::size_t open = skip_spaces(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_forward(code, open, '(', ')');
    if (close == std::string::npos) continue;
    // The range-for colon: depth 1, not part of '::'.
    int depth = 0;
    std::size_t colon = std::string::npos;
    for (std::size_t i = open; i < close; ++i) {
      if (code[i] == '(') ++depth;
      else if (code[i] == ')') --depth;
      else if (code[i] == ':' && depth == 1) {
        if ((i > 0 && code[i - 1] == ':') ||
            (i + 1 < code.size() && code[i + 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string expr = code.substr(colon + 1, close - 1 - colon - 1);
    if (expr.find("sorted_keys") != std::string::npos ||
        expr.find("sorted_items") != std::string::npos)
      continue;
    for (const auto& ident : identifiers_in(expr)) {
      if (names.unordered.count(ident) != 0) {
        out.push_back({path, line_of(lines, pos), "unordered-iter",
                       "range-for over unordered container '" + ident +
                       "' leaks hash-iteration order; iterate an ordered "
                       "container or emit via util::sorted_items/"
                       "sorted_keys",
                       false, "", "", ""});
        break;
      }
    }
  }
  // Explicit iterator walks: X.begin() / X.cbegin() / X.rbegin().
  static const std::vector<std::string> kBegins = {".begin", ".cbegin",
                                                   ".rbegin"};
  for (const auto& name : names.unordered) {
    for (std::size_t pos = find_word(code, name, 0);
         pos != std::string::npos; pos = find_word(code, name, pos + 1)) {
      for (const auto& b : kBegins) {
        if (code.compare(pos + name.size(), b.size(), b) == 0 &&
            pos + name.size() + b.size() < code.size() &&
            code[pos + name.size() + b.size()] == '(') {
          out.push_back({path, line_of(lines, pos), "unordered-iter",
                         "iterator walk over unordered container '" + name +
                         "' leaks hash-iteration order",
                         false, "", "", ""});
        }
      }
    }
  }
}

void check_pointer_keys(const std::string& path, const std::string& code,
                        const std::vector<std::size_t>& lines,
                        std::vector<Finding>& out) {
  static const std::vector<std::string> kContainers = {
      "map", "set", "multimap", "multiset", "unordered_map",
      "unordered_set", "less"};
  for (const auto& token : kContainers) {
    for (std::size_t pos = find_word(code, token, 0);
         pos != std::string::npos; pos = find_word(code, token, pos + 1)) {
      const std::size_t open = pos + token.size();
      if (open >= code.size() || code[open] != '<') continue;
      // First template argument: up to ',' or the matching '>' at depth 1.
      int depth = 1;
      std::size_t end = std::string::npos;
      for (std::size_t i = open + 1; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '<') ++depth;
        else if (c == '>') {
          --depth;
          if (depth == 0) { end = i; break; }
        } else if (c == ',' && depth == 1) {
          end = i;
          break;
        }
      }
      if (end == std::string::npos) continue;
      std::string arg = code.substr(open + 1, end - open - 1);
      while (!arg.empty() &&
             std::isspace(static_cast<unsigned char>(arg.back())) != 0)
        arg.pop_back();
      if (!arg.empty() && arg.back() == '*') {
        out.push_back({path, line_of(lines, pos), "pointer-key",
                       "container keyed / ordered on a pointer type ('" +
                       arg + "'): pointer order is allocation order, not "
                       "a stable ordering — key on a value id instead",
                       false, "", "", ""});
      }
    }
  }
}

void check_parallel_regions(const std::string& path, const std::string& code,
                            const std::vector<std::size_t>& lines,
                            const NameSets& names,
                            std::vector<Finding>& out) {
  static const std::vector<std::string> kEntries = {"parallel_for",
                                                    "parallel_map"};
  for (const auto& entry : kEntries) {
    for (std::size_t pos = find_word(code, entry, 0);
         pos != std::string::npos; pos = find_word(code, entry, pos + 1)) {
      const std::size_t open = skip_spaces(code, pos + entry.size());
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = match_forward(code, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::string region = code.substr(open, close - open);
      const std::size_t base = open;

      // Shared-RNG use: only per-index child derivation is allowed.
      for (const auto& rng : names.rngs) {
        for (std::size_t r = find_word(region, rng, 0);
             r != std::string::npos;
             r = find_word(region, rng, r + 1)) {
          const std::size_t dot = r + rng.size();
          if (dot >= region.size() || region[dot] != '.') continue;
          const std::string method = read_ident(region, dot + 1);
          if (method.empty() || method == "child") continue;
          const std::size_t call = skip_spaces(region, dot + 1 +
                                               method.size());
          if (call >= region.size() || region[call] != '(') continue;
          out.push_back({path, line_of(lines, base + r), "rng-parallel",
                         "'" + rng + "." + method + "(...)' inside a "
                         "parallel region shares a mutable generator "
                         "across tasks; derive a per-index stream with '" +
                         rng + ".child(index)' (see docs/concurrency.md)",
                         false, "", "", ""});
        }
      }

      // Floating-point accumulation commits in scheduling order.
      for (const auto& f : names.floats) {
        for (std::size_t r = find_word(region, f, 0);
             r != std::string::npos; r = find_word(region, f, r + 1)) {
          const std::size_t op = skip_spaces(region, r + f.size());
          if (op + 1 < region.size() &&
              (region[op] == '+' || region[op] == '-') &&
              region[op + 1] == '=') {
            out.push_back({path, line_of(lines, base + r), "float-accum",
                           "accumulating into float/double '" + f +
                           "' inside a parallel region is ordered by the "
                           "scheduler; fill per-index slots (parallel_map) "
                           "and reduce serially",
                           false, "", "", ""});
          }
        }
      }
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<PassInfo>& passes() {
  static const std::vector<PassInfo> kPasses = {
      {"determinism",
       "ambient clocks/PRNGs, hash-order iteration, pointer keys, "
       "parallel RNG/float hazards"},
      {"layers",
       "cross-module #include edges must respect the declared layer DAG "
       "(tools/detlint/layers.txt)"},
      {"globals",
       "mutable namespace-scope / static / thread_local state must be "
       "allowlisted (tools/detlint/globals_allowlist.txt)"},
      {"captures",
       "by-reference captures written inside parallel_for/parallel_map "
       "bodies without a per-task index subscript"},
      {"hotalloc",
       "allocation and container growth inside functions annotated "
       "'// detlint: hot'"},
  };
  return kPasses;
}

bool is_pass_name(const std::string& name) {
  for (const auto& p : passes())
    if (p.name == name) return true;
  return false;
}

std::string strip_comments_and_strings(const std::string& content) {
  std::string out = content;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident(content[i - 1]))) {
          // Raw string literal: R"delim( ... )delim".
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < content.size() && content[p] != '(')
            raw_delim.push_back(content[p++]);
          state = State::kRaw;
          for (std::size_t k = i; k <= p && k < content.size(); ++k)
            out[k] = ' ';
          i = p;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && content.compare(i, closer.size(), closer) == 0) {
          for (std::size_t k = i; k < i + closer.size(); ++k) out[k] = ' ';
          i += closer.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::string blank_preprocessor(const std::string& stripped) {
  std::string out = stripped;
  bool at_line_start = true;
  bool in_directive = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_directive) {
      if (c == '\n') {
        // A directive continues past a backslash-newline. Look in the
        // INPUT: the directive's characters in `out` are already blanks.
        std::size_t back = i;
        bool continued = false;
        while (back > 0) {
          --back;
          if (stripped[back] == '\\') { continued = true; break; }
          if (std::isspace(static_cast<unsigned char>(stripped[back])) == 0)
            break;
        }
        if (!continued) in_directive = false;
        at_line_start = true;
      } else {
        out[i] = ' ';
      }
      continue;
    }
    if (c == '\n') {
      at_line_start = true;
    } else if (at_line_start && c == '#') {
      in_directive = true;
      out[i] = ' ';
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      at_line_start = false;
    }
  }
  return out;
}

NameSets collect_names(const std::string& content) {
  const std::string code = strip_comments_and_strings(content);
  NameSets names;

  // Variables/members declared as unordered containers, including when
  // nested inside another template (std::vector<std::unordered_map<..>>).
  static const std::vector<std::string> kUnordered = {"unordered_map",
                                                      "unordered_set"};
  for (const auto& token : kUnordered) {
    for (std::size_t pos = find_word(code, token, 0);
         pos != std::string::npos; pos = find_word(code, token, pos + 1)) {
      std::size_t i = pos + token.size();
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        else if (code[i] == '>') {
          --depth;
          if (depth == 0) { ++i; break; }
        }
      }
      // Skip enclosing-template closers, refs, and cv noise before the
      // declared name.
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) != 0 ||
              code[i] == '>' || code[i] == '&' || code[i] == '*'))
        ++i;
      if (i < code.size() && word_at(code, i, "const"))
        i = skip_spaces(code, i + 5);
      if (i >= code.size() || !is_ident(code[i]) ||
          std::isdigit(static_cast<unsigned char>(code[i])) != 0)
        continue;
      const std::string ident = read_ident(code, i);
      if (!ident.empty()) names.unordered.insert(ident);
    }
  }

  static const std::vector<std::string> kFloatTypes = {"double", "float"};
  for (const auto& token : kFloatTypes) {
    for (std::size_t pos = find_word(code, token, 0);
         pos != std::string::npos; pos = find_word(code, token, pos + 1)) {
      std::size_t i = skip_spaces(code, pos + token.size());
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) ++i;
      i = skip_spaces(code, i);
      if (i >= code.size() || !is_ident(code[i]) ||
          std::isdigit(static_cast<unsigned char>(code[i])) != 0)
        continue;
      const std::string ident = read_ident(code, i);
      if (!ident.empty()) names.floats.insert(ident);
    }
  }

  for (std::size_t pos = find_word(code, "Rng", 0); pos != std::string::npos;
       pos = find_word(code, "Rng", pos + 1)) {
    std::size_t i = skip_spaces(code, pos + 3);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) ++i;
    i = skip_spaces(code, i);
    if (i >= code.size() || !is_ident(code[i]) ||
        std::isdigit(static_cast<unsigned char>(code[i])) != 0)
      continue;
    const std::string ident = read_ident(code, i);
    if (!ident.empty()) names.rngs.insert(ident);
  }
  return names;
}

void merge_names(NameSets& into, const NameSets& from) {
  into.unordered.insert(from.unordered.begin(), from.unordered.end());
  into.floats.insert(from.floats.begin(), from.floats.end());
  into.rngs.insert(from.rngs.begin(), from.rngs.end());
}

void apply_inline_annotations(const std::string& content,
                              std::vector<Finding>& findings) {
  const Annotations ann = parse_annotations(content);
  for (Finding& f : findings) {
    if (f.suppressed || f.line <= 0) continue;
    const std::size_t idx = static_cast<std::size_t>(f.line) - 1;
    const bool same = idx < ann.same_line.size() &&
                      ann.same_line[idx].count(f.check) != 0;
    const bool prev = idx > 0 && idx - 1 < ann.next_line.size() &&
                      ann.next_line[idx - 1].count(f.check) != 0;
    if (same || prev) {
      f.suppressed = true;
      f.suppress_reason = "inline detlint-allow annotation";
    }
  }
}

std::vector<Finding> scan_file(const std::string& path,
                               const std::string& content,
                               const NameSets& names) {
  const std::string code = strip_comments_and_strings(content);
  const std::vector<std::size_t> lines = index_lines(code);
  std::vector<Finding> findings;

  check_banned_calls(path, code, lines, findings);
  check_unordered_iteration(path, code, lines, names, findings);
  check_pointer_keys(path, code, lines, findings);
  check_parallel_regions(path, code, lines, names, findings);

  for (Finding& f : findings) f.pass = "determinism";

  // Inline annotations from the original (unstripped) text.
  apply_inline_annotations(content, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return findings;
}

std::vector<Suppression> parse_suppressions(const std::string& text) {
  std::vector<Suppression> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::stringstream fields(line);
    Suppression s;
    if (!(fields >> s.path_substring >> s.check)) continue;
    std::getline(fields, s.reason);
    const std::size_t b = s.reason.find_first_not_of(" \t");
    s.reason = b == std::string::npos ? "" : s.reason.substr(b);
    out.push_back(std::move(s));
  }
  return out;
}

void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<Suppression>& suppressions) {
  for (Finding& f : findings) {
    if (f.suppressed) continue;
    for (const Suppression& s : suppressions) {
      if (f.check == s.check &&
          f.file.find(s.path_substring) != std::string::npos) {
        f.suppressed = true;
        f.suppress_reason = "suppressions file: " + s.reason;
        break;
      }
    }
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.pass != b.pass) return a.pass < b.pass;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
}

std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned) {
  std::vector<Finding> sorted = findings;
  sort_findings(sorted);
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const auto& f : sorted) (f.suppressed ? suppressed : unsuppressed)++;

  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"detlint-json-v1\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"counts\": {\"unsuppressed\": " << unsuppressed
      << ", \"suppressed\": " << suppressed << "},\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Finding& f = sorted[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"pass\": \"" << json_escape(f.pass)
        << "\", \"check\": \"" << json_escape(f.check)
        << "\", \"message\": \"" << json_escape(f.message)
        << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"reason\": \"" << json_escape(f.suppress_reason) << "\"}";
  }
  out << (sorted.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

}  // namespace detlint
