// layers pass: enforce the declared module dependency DAG.
//
// Modules are the first-level directories under src/ (util, crypto,
// dirauth, ...). layers.txt assigns each module to a layer and declares
// every legal cross-module include edge; an edge that points at a
// HIGHER layer must be a `backedge` entry carrying a written
// justification. Anything else — an undeclared edge, an include of an
// unknown module, a plain `edge` that climbs the stack — is a finding.
//
// Includes are parsed from the ORIGINAL file content: the include path
// lives inside a string literal, which the shared stripper blanks.
#include "detlint/detlint.hpp"

#include <functional>
#include <sstream>

#include "detlint/lex.hpp"

namespace detlint {
namespace {

/// Splits one `#include "..."` target out of a line, or "" when the
/// line is not a quoted include. Angle-bracket includes (system
/// headers) are outside the DAG.
std::string quoted_include_of(const std::string& line) {
  std::size_t i = lex::skip_spaces(line, 0);
  if (i >= line.size() || line[i] != '#') return "";
  i = lex::skip_spaces(line, i + 1);
  const std::string kw = lex::read_ident(line, i);
  if (kw != "include") return "";
  i = lex::skip_spaces(line, i + kw.size());
  if (i >= line.size() || line[i] != '"') return "";
  const std::size_t close = line.find('"', i + 1);
  if (close == std::string::npos) return "";
  return line.substr(i + 1, close - i - 1);
}

/// Module named by an include target: the leading path component, or ""
/// for a same-directory include ("foo.hpp").
std::string module_of_include(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return "";
  return target.substr(0, slash);
}

}  // namespace

std::string module_of(const std::string& path) {
  // The component after the LAST "src/" component, so fixture trees
  // (testdata/layers/src/<mod>/...) resolve the same way as the real
  // tree.
  std::size_t src = std::string::npos;
  for (std::size_t pos = path.find("src/"); pos != std::string::npos;
       pos = path.find("src/", pos + 1)) {
    if (pos == 0 || path[pos - 1] == '/') src = pos;
  }
  if (src == std::string::npos) return "";
  const std::size_t begin = src + 4;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return "";  // file directly in src/
  return path.substr(begin, slash - begin);
}

LayerConfig parse_layers(const std::string& text) {
  LayerConfig config;
  std::stringstream ss(text);
  std::string line;
  int line_no = 0;
  int next_layer = 1;
  auto error = [&](const std::string& msg) {
    config.errors.push_back("layers.txt:" + std::to_string(line_no) + ": " +
                            msg);
  };
  while (std::getline(ss, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::stringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;
    if (kind == "layer") {
      std::string mod;
      int count = 0;
      while (fields >> mod) {
        ++count;
        if (!config.layer_of.emplace(mod, next_layer).second)
          error("module '" + mod + "' assigned to two layers");
      }
      if (count == 0) error("empty layer line");
      ++next_layer;
    } else if (kind == "edge" || kind == "backedge") {
      std::string src;
      std::string dst;
      if (!(fields >> src >> dst)) {
        error("expected '" + kind + " <src> <dst>'");
        continue;
      }
      const auto si = config.layer_of.find(src);
      const auto di = config.layer_of.find(dst);
      if (si == config.layer_of.end()) {
        error("unknown module '" + src + "' (declare its layer first)");
        continue;
      }
      if (di == config.layer_of.end()) {
        error("unknown module '" + dst + "' (declare its layer first)");
        continue;
      }
      if (kind == "edge") {
        if (si->second < di->second) {
          error("edge " + src + " -> " + dst + " climbs from layer " +
                std::to_string(si->second) + " to layer " +
                std::to_string(di->second) +
                "; a genuine upward dependency needs a justified "
                "'backedge' entry");
          continue;
        }
        config.edges.insert({src, dst});
        config.edge_lines[{src, dst}] = line_no;
      } else {
        if (si->second >= di->second) {
          error("backedge " + src + " -> " + dst +
                " does not climb the layer order; declare it 'edge'");
          continue;
        }
        std::string reason;
        std::getline(fields, reason);
        const std::size_t b = reason.find_first_not_of(" \t");
        reason = b == std::string::npos ? "" : reason.substr(b);
        if (reason.empty()) {
          error("backedge " + src + " -> " + dst +
                " needs a justification (why is this upward coupling "
                "acceptable ahead of the shard refactor?)");
          continue;
        }
        config.backedges[{src, dst}] = reason;
        config.edge_lines[{src, dst}] = line_no;
      }
    } else {
      error("unknown directive '" + kind + "'");
    }
  }

  // Within a layer, declared edges are directional; a cycle among them
  // would make the "DAG" a lie. Downward edges cannot cycle (layers are
  // strictly ordered), so only same-layer edges need the walk.
  std::map<std::string, std::vector<std::string>> same_layer;
  for (const auto& e : config.edges) {
    if (config.layer_of.at(e.first) == config.layer_of.at(e.second))
      same_layer[e.first].push_back(e.second);
  }
  std::map<std::string, int> color;  // 0 unseen, 1 on stack, 2 done
  std::function<bool(const std::string&)> has_cycle =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    for (const auto& next : same_layer[node]) {
      if (color[next] == 1) {
        config.errors.push_back("layers.txt: same-layer edges form a "
                                "cycle through '" + node + "' -> '" +
                                next + "'");
        return true;
      }
      if (color[next] == 0 && has_cycle(next)) return true;
    }
    color[node] = 2;
    return false;
  };
  for (const auto& [node, _] : same_layer) {
    if (color[node] == 0 && has_cycle(node)) break;
  }
  return config;
}

std::vector<Finding> check_layers(
    const std::string& path, const std::string& content,
    const LayerConfig& config,
    std::set<std::pair<std::string, std::string>>* observed) {
  std::vector<Finding> out;
  const std::string mod = module_of(path);
  if (mod.empty()) return out;  // above the DAG (tools, tests, bench)

  const auto self = config.layer_of.find(mod);
  std::stringstream ss(content);
  std::string line;
  int line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    const std::string target = quoted_include_of(line);
    if (target.empty()) continue;
    const std::string inc_mod = module_of_include(target);
    if (inc_mod.empty() || inc_mod == mod) continue;

    if (self == config.layer_of.end()) {
      out.push_back({path, line_no, "unknown-module",
                     "file belongs to module '" + mod +
                     "', which has no layer in layers.txt; add it to a "
                     "'layer' line",
                     false, "", "layers", mod});
      break;  // one finding per file is enough
    }
    const auto target_it = config.layer_of.find(inc_mod);
    if (target_it == config.layer_of.end()) {
      out.push_back({path, line_no, "unknown-module",
                     "#include \"" + target + "\" targets module '" +
                     inc_mod + "', which has no layer in layers.txt",
                     false, "", "layers", inc_mod});
      continue;
    }
    if (observed != nullptr) observed->insert({mod, inc_mod});

    const std::pair<std::string, std::string> edge{mod, inc_mod};
    const bool climbs = self->second < target_it->second;
    if (climbs) {
      if (config.backedges.count(edge) != 0) continue;
      out.push_back({path, line_no, "layer-backedge",
                     "#include \"" + target + "\": module '" + mod +
                     "' (layer " + std::to_string(self->second) +
                     ") reaches UP to '" + inc_mod + "' (layer " +
                     std::to_string(target_it->second) +
                     "); invert the dependency or add a justified "
                     "'backedge' entry to layers.txt",
                     false, "", "layers", inc_mod});
    } else {
      if (config.edges.count(edge) != 0) continue;
      out.push_back({path, line_no, "undeclared-edge",
                     "#include \"" + target + "\": edge '" + mod +
                     " -> " + inc_mod + "' is not declared in "
                     "layers.txt; add an 'edge' line if this coupling "
                     "is intended",
                     false, "", "layers", inc_mod});
    }
  }
  return out;
}

}  // namespace detlint
