// Shared lexical helpers for the detlint passes. Everything operates on
// plain std::string views of the (usually comment/string-stripped) file
// content; nothing allocates beyond the returned values. Header-only so
// each pass TU can inline the hot token scans.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace detlint::lex {

inline bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when content[pos..pos+token.size()) is `token` as a whole word.
inline bool word_at(const std::string& s, std::size_t pos,
                    const std::string& token) {
  if (pos + token.size() > s.size()) return false;
  if (s.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident(s[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < s.size() && is_ident(s[end])) return false;
  return true;
}

inline std::size_t find_word(const std::string& s, const std::string& token,
                             std::size_t from) {
  for (std::size_t pos = s.find(token, from); pos != std::string::npos;
       pos = s.find(token, pos + 1)) {
    if (word_at(s, pos, token)) return pos;
  }
  return std::string::npos;
}

inline std::size_t skip_spaces(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0)
    ++pos;
  return pos;
}

inline std::size_t prev_non_space(const std::string& s, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return pos;
  }
  return std::string::npos;
}

inline std::string read_ident(const std::string& s, std::size_t pos) {
  std::size_t end = pos;
  while (end < s.size() && is_ident(s[end])) ++end;
  return s.substr(pos, end - pos);
}

/// Position just past the matching closer for the opener at `open`
/// (content[open] must be the opener), or npos when unbalanced.
inline std::size_t match_forward(const std::string& s, std::size_t open,
                                 char opener, char closer) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == opener) ++depth;
    else if (s[i] == closer) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

inline int line_of(const std::vector<std::size_t>& line_starts,
                   std::size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

inline std::vector<std::size_t> index_lines(const std::string& s) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s[i] == '\n') starts.push_back(i + 1);
  return starts;
}

/// Extracts every identifier token from `expr`, in order, duplicates
/// kept.
inline std::vector<std::string> identifiers_in(const std::string& expr) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < expr.size()) {
    if (is_ident(expr[i]) &&
        std::isdigit(static_cast<unsigned char>(expr[i])) == 0 &&
        (i == 0 || !is_ident(expr[i - 1]))) {
      out.push_back(read_ident(expr, i));
      i += out.back().size();
    } else {
      ++i;
    }
  }
  return out;
}

/// C++ keywords that can never be a declared variable name; used by the
/// scope-tracking passes to tell declarations from control flow.
inline bool is_keyword(const std::string& word) {
  static const std::vector<std::string> kKeywords = {
      "alignas",   "alignof",  "auto",      "bool",       "break",
      "case",      "catch",    "char",      "class",      "const",
      "constexpr", "constinit", "consteval", "continue",  "decltype",
      "default",   "delete",   "do",        "double",     "else",
      "enum",      "explicit", "export",    "extern",     "false",
      "float",     "for",      "friend",    "goto",       "if",
      "inline",    "int",      "long",      "mutable",    "namespace",
      "new",       "noexcept", "nullptr",   "operator",   "private",
      "protected", "public",   "register",  "requires",   "return",
      "short",     "signed",   "sizeof",    "static",     "static_assert",
      "struct",    "switch",   "template",  "this",       "thread_local",
      "throw",     "true",     "try",       "typedef",    "typeid",
      "typename",  "union",    "unsigned",  "using",      "virtual",
      "void",      "volatile", "wchar_t",   "while"};
  return std::find(kKeywords.begin(), kKeywords.end(), word) !=
         kKeywords.end();
}

}  // namespace detlint::lex
