// globals pass: census of process-wide mutable state.
//
// A sharded World must own ALL of its state; any mutable variable that
// lives outside an object graph rooted in the World — namespace-scope
// globals, function-local statics, thread_locals, static data members —
// is shared across shards by construction. This pass walks every file
// with a small brace-matching scope tracker and reports each such
// declaration; the checked-in allowlist (globals_allowlist.txt) is the
// only way to keep one, and every entry must say why.
//
// Heuristic boundaries (documented, suppressible): const/constexpr/
// constinit declarations are exempt (immutable after startup), and a
// namespace-scope declaration whose statement opens a parenthesis
// before any '=' is treated as a function declaration.
#include "detlint/detlint.hpp"

#include <cctype>
#include <sstream>

#include "detlint/lex.hpp"

namespace detlint {
namespace {

using lex::is_ident;
using lex::is_keyword;
using lex::identifiers_in;

enum class Scope { kNamespace, kClass, kFunction };

bool has_word(const std::string& stmt, const std::string& word) {
  return lex::find_word(stmt, word, 0) != std::string::npos;
}

bool is_const_decl(const std::string& stmt) {
  return has_word(stmt, "const") || has_word(stmt, "constexpr") ||
         has_word(stmt, "constinit") || has_word(stmt, "consteval");
}

/// The declared name: the last identifier before the first of
/// '=', '{', '[', '(' (whichever comes first), or the last identifier
/// of the statement. Covers `int x = 1`, `std::atomic<bool> b{true}`,
/// `int a[3]`, and `static ThreadPool pool(make())`.
std::string declared_name(const std::string& stmt) {
  std::size_t limit = stmt.size();
  for (const char delim : {'=', '{', '[', '('}) {
    const std::size_t pos = stmt.find(delim);
    if (pos != std::string::npos && pos < limit) limit = pos;
  }
  std::string name;
  std::size_t i = 0;
  while (i < limit) {
    if (is_ident(stmt[i]) &&
        std::isdigit(static_cast<unsigned char>(stmt[i])) == 0 &&
        (i == 0 || !is_ident(stmt[i - 1]))) {
      const std::string ident = lex::read_ident(stmt, i);
      if (!is_keyword(ident)) name = ident;
      i += ident.size();
    } else {
      ++i;
    }
  }
  return name;
}

/// Number of identifier tokens that could be a type or a declared name
/// — everything except storage/cv specifiers. `thread_local bool x`
/// counts bool and x (a declaration needs at least those two).
std::size_t decl_tokens(const std::string& stmt) {
  static const std::vector<std::string> kSpecifiers = {
      "static", "thread_local", "inline", "volatile", "mutable",
      "register", "extern"};
  std::size_t n = 0;
  for (const auto& ident : identifiers_in(stmt))
    if (std::find(kSpecifiers.begin(), kSpecifiers.end(), ident) ==
        kSpecifiers.end())
      ++n;
  return n;
}

/// Statement-leading keywords that can never head a variable
/// declaration we care about.
bool is_non_decl_statement(const std::string& stmt) {
  static const std::vector<std::string> kSkip = {
      "using", "typedef", "template", "extern", "friend", "static_assert",
      "struct", "class", "union", "enum", "concept", "return", "if",
      "while", "for", "switch", "case", "goto", "public", "private",
      "protected", "operator", "asm", "namespace"};
  const std::size_t begin = lex::skip_spaces(stmt, 0);
  if (begin >= stmt.size()) return true;
  const std::string head = lex::read_ident(stmt, begin);
  for (const auto& k : kSkip)
    if (head == k) return true;
  return false;
}

void maybe_flag(const std::string& path, const std::string& stmt,
                int line, Scope scope, std::vector<Finding>& out) {
  const bool is_static = has_word(stmt, "static");
  const bool is_tls = has_word(stmt, "thread_local");

  if (scope != Scope::kNamespace && !is_static && !is_tls) return;
  if (is_const_decl(stmt)) return;
  if (is_non_decl_statement(stmt)) return;

  if (scope == Scope::kNamespace || scope == Scope::kClass) {
    // A '(' before any '=' marks a function declaration / prototype.
    // (Function-style variable init at these scopes is the most vexing
    // parse; this tree brace-initializes instead.)
    const std::size_t paren = stmt.find('(');
    const std::size_t eq = stmt.find('=');
    if (paren != std::string::npos &&
        (eq == std::string::npos || paren < eq))
      return;
  }
  if (decl_tokens(stmt) < 2) return;  // need at least type + name

  const std::string name = declared_name(stmt);
  if (name.empty()) return;

  std::string kind;
  switch (scope) {
    case Scope::kNamespace:
      kind = is_tls ? "thread_local namespace-scope variable"
                    : "mutable namespace-scope variable";
      break;
    case Scope::kClass:
      kind = is_tls ? "thread_local static data member"
                    : "mutable static data member";
      break;
    case Scope::kFunction:
      kind = is_tls ? "function-local thread_local"
                    : "function-local static";
      break;
  }
  out.push_back({path, line, "global-mutable",
                 kind + " '" + name + "' is process-wide mutable state; "
                 "shard-owned Worlds cannot partition it — move it into "
                 "an object the caller owns, or allowlist it with a "
                 "justification in globals_allowlist.txt",
                 false, "", "globals", name});
}

/// Classifies the '{' ending `stmt`. `prev` is the last non-space
/// character before the brace ('\0' when the statement is empty).
enum class BraceKind { kNamespace, kClass, kFunction, kInit };

BraceKind classify_brace(const std::string& stmt, char prev) {
  if (has_word(stmt, "namespace")) return BraceKind::kNamespace;
  if ((has_word(stmt, "class") || has_word(stmt, "struct") ||
       has_word(stmt, "union") || has_word(stmt, "enum")) &&
      stmt.find('(') == std::string::npos)
    return BraceKind::kClass;
  if (prev == ')') return BraceKind::kFunction;
  // `) const {`, `) noexcept {`, `) -> T {`, ctor-initializer tails:
  // after the last ')' only specifier-ish characters remain.
  const std::size_t close = stmt.rfind(')');
  if (close != std::string::npos) {
    bool specifier_tail = true;
    for (std::size_t i = close + 1; i < stmt.size(); ++i) {
      const char c = stmt[i];
      if (is_ident(c) || std::isspace(static_cast<unsigned char>(c)) != 0 ||
          c == ':' || c == '<' || c == '>' || c == '&' || c == '*' ||
          c == ',' || c == '-' || c == '{' || c == '}' || c == '[' ||
          c == ']')
        continue;
      specifier_tail = false;
      break;
    }
    if (specifier_tail) return BraceKind::kFunction;
  }
  // Control-flow blocks inside functions: `else {`, `do {`, `try {`.
  const std::size_t last = stmt.find_last_not_of(" \t\n");
  if (last != std::string::npos) {
    std::size_t b = last;
    while (b > 0 && is_ident(stmt[b - 1])) --b;
    const std::string word = stmt.substr(b, last - b + 1);
    if (word == "else" || word == "do" || word == "try")
      return BraceKind::kFunction;
  }
  // Brace initializer: `std::atomic<bool> flag{true}`, `= {1, 2}`.
  if (prev != '\0' && (is_ident(prev) || prev == '=' || prev == ',' ||
                       prev == '(' || prev == '[' || prev == '>'))
    return BraceKind::kInit;
  return BraceKind::kFunction;  // lambdas (`[&] {`), bare blocks
}

}  // namespace

std::vector<Finding> check_globals(const std::string& path,
                                   const std::string& content) {
  const std::string code =
      blank_preprocessor(strip_comments_and_strings(content));
  const std::vector<std::size_t> lines = lex::index_lines(code);
  std::vector<Finding> out;

  std::vector<Scope> scopes;  // implicit global namespace at bottom
  std::size_t stmt_start = 0;
  const Scope outer = Scope::kNamespace;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == ';') {
      const Scope scope = scopes.empty() ? outer : scopes.back();
      const std::string stmt = code.substr(stmt_start, i - stmt_start);
      maybe_flag(path, stmt, lex::line_of(lines, stmt_start +
                 lex::skip_spaces(stmt, 0)), scope, out);
      stmt_start = i + 1;
    } else if (c == '{') {
      const std::string stmt = code.substr(stmt_start, i - stmt_start);
      const std::size_t prev_pos = lex::prev_non_space(code, i);
      const char prev = (prev_pos == std::string::npos ||
                         prev_pos < stmt_start)
                            ? '\0'
                            : code[prev_pos];
      const BraceKind kind = classify_brace(stmt, prev);
      if (kind == BraceKind::kInit) {
        // Part of the current statement: skip to the matching '}' and
        // keep accumulating (the statement's ';' is still ahead).
        const std::size_t end = lex::match_forward(code, i, '{', '}');
        if (end == std::string::npos) break;  // unbalanced; bail out
        i = end - 1;
        continue;
      }
      switch (kind) {
        case BraceKind::kNamespace: scopes.push_back(Scope::kNamespace);
          break;
        case BraceKind::kClass: scopes.push_back(Scope::kClass); break;
        default: scopes.push_back(Scope::kFunction); break;
      }
      stmt_start = i + 1;
    } else if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt_start = i + 1;
    }
  }
  return out;
}

std::vector<GlobalsAllowEntry> parse_globals_allowlist(
    const std::string& text, std::vector<std::string>* errors) {
  std::vector<GlobalsAllowEntry> out;
  std::istringstream ss(text);
  std::string line;
  int line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    GlobalsAllowEntry entry;
    if (!(fields >> entry.path_substring >> entry.symbol)) continue;
    std::getline(fields, entry.reason);
    const std::size_t b = entry.reason.find_first_not_of(" \t");
    entry.reason = b == std::string::npos ? "" : entry.reason.substr(b);
    entry.line = line_no;
    if (entry.reason.empty() && errors != nullptr) {
      errors->push_back(
          "globals_allowlist.txt:" + std::to_string(line_no) +
          ": entry '" + entry.symbol +
          "' has no justification; every allowlisted global must say "
          "why it is safe to keep ahead of sharding");
      continue;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

void apply_globals_allowlist(std::vector<Finding>& findings,
                             const std::vector<GlobalsAllowEntry>& entries,
                             std::vector<bool>* matched) {
  if (matched != nullptr) matched->assign(entries.size(), false);
  for (Finding& f : findings) {
    if (f.pass != "globals" || f.suppressed) continue;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const GlobalsAllowEntry& e = entries[i];
      if (f.symbol == e.symbol &&
          f.file.find(e.path_substring) != std::string::npos) {
        f.suppressed = true;
        f.suppress_reason = "globals allowlist: " + e.reason;
        if (matched != nullptr) (*matched)[i] = true;
        break;
      }
    }
  }
}

}  // namespace detlint
