// hotalloc pass: allocation lint for annotated hot kernels.
//
// A `// detlint: hot` comment line directly above a function definition
// marks it as a measured hot path (the eytzinger ring descent, the
// SHA-1 lanes, the memo-table probes, the resolver tally loop). Inside
// the annotated function this pass flags anything that can hit the
// allocator: `new`, make_unique/make_shared, `std::string`
// construction, and the growing container calls. Hot kernels must work
// in caller-provided storage; the benches that justified PR 5/7 assume
// it.
#include "detlint/detlint.hpp"

#include <cctype>
#include <sstream>

#include "detlint/lex.hpp"

namespace detlint {
namespace {

using lex::find_word;
using lex::match_forward;
using lex::skip_spaces;
using lex::word_at;

/// 1-based line numbers of `// detlint: hot` annotation comments,
/// parsed from the ORIGINAL content (the stripper blanks comments).
/// The comment text after `//` must be exactly `detlint: hot` —
/// prose that merely *mentions* the marker (docs, this file) is not
/// an annotation.
std::vector<int> annotation_lines(const std::string& content) {
  std::vector<int> out;
  std::stringstream ss(content);
  std::string line;
  int line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    const std::size_t slash = line.find("//");
    if (slash == std::string::npos) continue;
    std::size_t from = slash + 2;
    while (from < line.size() && std::isspace(static_cast<unsigned char>(
                                     line[from])))
      ++from;
    std::size_t to = line.size();
    while (to > from && std::isspace(static_cast<unsigned char>(
                            line[to - 1])))
      --to;
    if (line.compare(from, to - from, "detlint: hot") == 0 &&
        to - from == 12)
      out.push_back(line_no);
  }
  return out;
}

void scan_region(const std::string& path, const std::string& code,
                 const std::vector<std::size_t>& lines, std::size_t begin,
                 std::size_t end, std::vector<Finding>& out) {
  auto flag = [&](std::size_t pos, const std::string& what) {
    out.push_back({path, lex::line_of(lines, pos), "hot-alloc",
                   what + " inside a '// detlint: hot' function hits the "
                   "allocator on the measured path; use caller-provided "
                   "or pre-sized storage",
                   false, "", "hotalloc", ""});
  };

  static const std::vector<std::string> kAllocWords = {"new", "make_unique",
                                                       "make_shared"};
  for (const auto& token : kAllocWords) {
    for (std::size_t pos = find_word(code, token, begin);
         pos != std::string::npos && pos < end;
         pos = find_word(code, token, pos + 1)) {
      flag(pos, "'" + token + "'");
    }
  }

  // std::string construction (std::string_view is a distinct token and
  // does not match).
  for (std::size_t pos = find_word(code, "string", begin);
       pos != std::string::npos && pos < end;
       pos = find_word(code, "string", pos + 1)) {
    if (pos >= 5 && code.compare(pos - 5, 5, "std::") == 0)
      flag(pos, "'std::string' construction");
  }

  static const std::vector<std::string> kGrowthCalls = {
      "push_back", "emplace_back", "emplace", "insert", "append",
      "resize", "reserve"};
  for (const auto& token : kGrowthCalls) {
    for (std::size_t pos = find_word(code, token, begin);
         pos != std::string::npos && pos < end;
         pos = find_word(code, token, pos + 1)) {
      // Member-call position only: `.push_back(` / `->push_back(`.
      const std::size_t prev = lex::prev_non_space(code, pos);
      if (prev == std::string::npos ||
          (code[prev] != '.' && code[prev] != '>'))
        continue;
      const std::size_t after = skip_spaces(code, pos + token.size());
      if (after < code.size() && code[after] == '(')
        flag(pos, "container growth call '." + token + "(...)'");
    }
  }
}

}  // namespace

std::vector<Finding> check_hotalloc(const std::string& path,
                                    const std::string& content) {
  const std::string code = strip_comments_and_strings(content);
  const std::vector<std::size_t> line_starts = lex::index_lines(code);
  std::vector<Finding> out;

  for (const int ann_line : annotation_lines(content)) {
    // The annotated function's body: first '{' at or after the line
    // following the annotation.
    if (static_cast<std::size_t>(ann_line) >= line_starts.size())
      continue;  // annotation on the last line: nothing to annotate
    const std::size_t from = line_starts[static_cast<std::size_t>(ann_line)];
    const std::size_t open = code.find('{', from);
    if (open == std::string::npos) continue;
    const std::size_t close = match_forward(code, open, '{', '}');
    if (close == std::string::npos) continue;
    scan_region(path, code, line_starts, open, close, out);
  }
  return out;
}

}  // namespace detlint
