// detlint — multi-pass shard-readiness analyzer for the torsim tree.
//
// The whole reproduction rests on byte-identical replays: a scenario
// seed must fully determine every CSV row, golden, and report — and the
// next step on the roadmap (sharded million-service Worlds) adds a
// second demand: simulator state must be cleanly partitionable. detlint
// statically certifies both, as a pipeline of passes sharing one
// tokenizer and per-file symbol sketch:
//
//   determinism  the original PR-3 checks (banned-call, unordered-iter,
//                pointer-key, float-accum, rng-parallel): no ambient
//                clocks/PRNGs, no hash-order emission, no scheduler-
//                ordered accumulation.
//   layers       the module dependency DAG declared in
//                tools/detlint/layers.txt: every cross-module
//                `#include "..."` edge under src/ must be declared, and
//                an edge against the layer order must carry a justified
//                `backedge` grandfather entry. New coupling cannot
//                sneak in ahead of the shard refactor.
//   globals      census of namespace-scope / function-`static` /
//                `thread_local` mutable state. Every hit must be
//                allowlisted (with justification) in
//                tools/detlint/globals_allowlist.txt — hidden
//                process-wide state is exactly what sharding cannot
//                tolerate.
//   captures     inside lambdas handed to parallel_for/parallel_map:
//                by-reference capture of a name that the body writes
//                without a per-task index subscript. The order-lucky
//                pattern the serial-equivalence goldens only catch
//                dynamically.
//   hotalloc     inside functions annotated `// detlint: hot`: `new`,
//                make_unique/make_shared, std::string construction,
//                and container growth calls. The ring descent, SHA-1
//                lanes, and memo probes must stay allocation-free.
//
// Findings are suppressed either inline —
//   ... flagged code ...  // detlint-allow(check-name) reason
//   // detlint-allow-next-line(check-name) reason
// — or via a checked-in suppression file (tools/detlint/suppressions.txt)
// of lines "path-substring check-name reason". Every suppression is an
// explicit, justified annotation; unsuppressed findings fail the build
// (ctest -L lint, CI).
//
// The scanner is deliberately lexical (no AST): it blanks comments and
// string literals, collects declared names in a whole-tree pass, then
// pattern-matches per line with a small scope tracker where a pass
// needs one. That keeps it dependency-free, fast, and easy to extend;
// the price is that checks are heuristics — precise enough for this
// tree, with suppressions as the escape hatch.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace detlint {

struct Finding {
  std::string file;
  int line = 0;            // 1-based
  std::string check;       // e.g. "banned-call"
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
  std::string pass;        // owning pass, e.g. "determinism"
  std::string symbol;      // globals pass: the declared name
};

/// One line of the suppression file: findings whose path contains
/// `path_substring` and whose check equals `check` are suppressed.
struct Suppression {
  std::string path_substring;
  std::string check;
  std::string reason;
};

/// Names declared in the scanned tree, collected before the per-file
/// check pass so members declared in a header are recognised when a
/// .cpp iterates them.
struct NameSets {
  std::set<std::string> unordered;  // unordered_map/unordered_set vars
  std::set<std::string> floats;     // double/float vars
  std::set<std::string> rngs;       // util::Rng vars
};

// --- pass registry ----------------------------------------------------

struct PassInfo {
  std::string name;
  std::string description;
};

/// The pipeline, in execution order. `--list-passes` prints exactly
/// this, one name per line, so CI scripts can iterate it.
const std::vector<PassInfo>& passes();

bool is_pass_name(const std::string& name);

// --- shared lexer -----------------------------------------------------

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure. Inline `detlint-allow` annotations are
/// honoured from the original text, not this stripped copy.
std::string strip_comments_and_strings(const std::string& content);

/// Additionally blanks preprocessor directives (including backslash
/// continuations) — used by the scope-tracking passes, which must not
/// mistake a macro body for a declaration.
std::string blank_preprocessor(const std::string& stripped);

/// Collects declared container/float/Rng names from one file.
NameSets collect_names(const std::string& content);

void merge_names(NameSets& into, const NameSets& from);

/// Marks findings covered by an inline `detlint-allow(check)` /
/// `detlint-allow-next-line(check)` annotation as suppressed. Pass the
/// ORIGINAL (unstripped) file content.
void apply_inline_annotations(const std::string& content,
                              std::vector<Finding>& findings);

// --- determinism pass -------------------------------------------------

/// Runs every determinism check over one file and applies inline
/// annotations. `path` is used for reporting and for path-scoped
/// exemptions (std::random_device under src/util/rng).
std::vector<Finding> scan_file(const std::string& path,
                               const std::string& content,
                               const NameSets& names);

// --- layers pass ------------------------------------------------------

/// The declared module dependency DAG (tools/detlint/layers.txt):
///   layer <mod> [<mod> ...]      one line per layer, lowest first
///   edge <src> <dst>             declared include edge; <dst> must sit
///                                on the same or a lower layer
///   backedge <src> <dst> reason  grandfathered edge against the layer
///                                order; the justification is required
struct LayerConfig {
  std::map<std::string, int> layer_of;  // module -> 1-based layer
  std::set<std::pair<std::string, std::string>> edges;
  std::map<std::pair<std::string, std::string>, std::string> backedges;
  std::vector<std::string> errors;  // fatal config problems
  // Declaration line numbers, for stale-entry reporting.
  std::map<std::pair<std::string, std::string>, int> edge_lines;
};

LayerConfig parse_layers(const std::string& text);

/// Module owning `path`: the path component following the last "src/"
/// component, or "" when the file is not under a src/ tree (tools and
/// tests sit above the DAG and are unconstrained).
std::string module_of(const std::string& path);

/// Checks every `#include "..."` edge of one file against the declared
/// DAG. Observed cross-module edges are added to `observed` (may be
/// null) for stale-entry detection.
std::vector<Finding> check_layers(
    const std::string& path, const std::string& content,
    const LayerConfig& config,
    std::set<std::pair<std::string, std::string>>* observed);

// --- globals pass -----------------------------------------------------

/// One line of tools/detlint/globals_allowlist.txt:
///   path-substring symbol justification...
/// The justification is mandatory — every piece of process-wide mutable
/// state must say why it is safe to keep ahead of sharding.
struct GlobalsAllowEntry {
  std::string path_substring;
  std::string symbol;
  std::string reason;
  int line = 0;  // 1-based line in the allowlist file
};

std::vector<GlobalsAllowEntry> parse_globals_allowlist(
    const std::string& text, std::vector<std::string>* errors);

/// Census of mutable namespace-scope variables, function-local statics,
/// thread_locals, and static data members in one file.
std::vector<Finding> check_globals(const std::string& path,
                                   const std::string& content);

/// Suppresses globals findings matched by an allowlist entry; sets
/// `matched[i]` for every entry that matched at least once.
void apply_globals_allowlist(std::vector<Finding>& findings,
                             const std::vector<GlobalsAllowEntry>& entries,
                             std::vector<bool>* matched);

// --- captures pass ----------------------------------------------------

/// Flags by-reference captures written inside parallel_for/parallel_map
/// lambda bodies without a per-task index subscript. Follows one level
/// of named-lambda indirection (`const auto body = [&](...){...};
/// parallel_map(n, t, body)`).
std::vector<Finding> check_captures(const std::string& path,
                                    const std::string& content);

// --- hotalloc pass ----------------------------------------------------

/// Flags allocation calls inside functions annotated with a
/// `// detlint: hot` comment line directly above the definition.
std::vector<Finding> check_hotalloc(const std::string& path,
                                    const std::string& content);

// --- suppressions -----------------------------------------------------

/// Parses the suppression file format: one `path-substring check reason`
/// per line, '#' comments, blank lines ignored.
std::vector<Suppression> parse_suppressions(const std::string& text);

/// Marks findings matched by a suppression entry.
void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<Suppression>& suppressions);

// --- output -----------------------------------------------------------

/// Stable sort for human and JSON output: (file, line, pass, check,
/// message).
void sort_findings(std::vector<Finding>& findings);

/// Renders findings as the `detlint-json-v1` document: findings sorted
/// by file:line:pass, every field explicit, trailing newline — byte-
/// stable across runs so CI artifacts diff cleanly.
std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned);

}  // namespace detlint
