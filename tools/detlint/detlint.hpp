// detlint — determinism linter for the torsim tree.
//
// The whole reproduction rests on byte-identical replays: a scenario
// seed must fully determine every CSV row, golden, and report. detlint
// statically enforces the invariants the goldens can only observe after
// the fact:
//
//   banned-call      std::rand/srand/time/clock/getenv/localtime/... and
//                    <chrono> wall/steady clocks or std::random_device
//                    (the latter allowed only under src/util/rng) — any
//                    of these smuggles ambient state into a run.
//   unordered-iter   range-for or .begin() over a variable declared as
//                    std::unordered_map/unordered_set anywhere in the
//                    scanned tree: hash-iteration order leaks into
//                    whatever the loop feeds. Iterate an ordered
//                    container or emit via util::sorted_keys /
//                    util::sorted_items (recognised as the ordering
//                    step).
//   pointer-key      map/set keyed on a pointer type (or std::less<T*>):
//                    pointer order is allocation order, not a stable
//                    ordering.
//   float-accum      += / -= on a float/double variable inside a
//                    parallel_for/parallel_map region: cross-task FP
//                    accumulation commits in scheduling order. Reduce
//                    serially over parallel_map's per-index slots.
//   rng-parallel     calling any Rng method except .child() inside a
//                    parallel_for/parallel_map region: tasks must derive
//                    per-index streams (rng.child(i)), never share a
//                    mutable generator.
//
// Findings are suppressed either inline —
//   ... flagged code ...  // detlint-allow(check-name) reason
//   // detlint-allow-next-line(check-name) reason
// — or via a checked-in suppression file (tools/detlint/suppressions.txt)
// of lines "path-substring check-name reason". Every suppression is an
// explicit, justified annotation; unsuppressed findings fail the build
// (ctest -L lint, CI).
//
// The scanner is deliberately lexical (no AST): it blanks comments and
// string literals, collects declared names in a whole-tree pass, then
// pattern-matches per line. That keeps it dependency-free, fast, and
// easy to extend; the price is that checks are heuristics — precise
// enough for this tree, with suppressions as the escape hatch.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace detlint {

struct Finding {
  std::string file;
  int line = 0;            // 1-based
  std::string check;       // e.g. "banned-call"
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
};

/// One line of the suppression file: findings whose path contains
/// `path_substring` and whose check equals `check` are suppressed.
struct Suppression {
  std::string path_substring;
  std::string check;
  std::string reason;
};

/// Names declared in the scanned tree, collected before the per-file
/// check pass so members declared in a header are recognised when a
/// .cpp iterates them.
struct NameSets {
  std::set<std::string> unordered;  // unordered_map/unordered_set vars
  std::set<std::string> floats;     // double/float vars
  std::set<std::string> rngs;       // util::Rng vars
};

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure. Inline `detlint-allow` annotations are
/// honoured from the original text, not this stripped copy.
std::string strip_comments_and_strings(const std::string& content);

/// Collects declared container/float/Rng names from one file.
NameSets collect_names(const std::string& content);

void merge_names(NameSets& into, const NameSets& from);

/// Runs every check over one file. `path` is used for reporting and for
/// path-scoped exemptions (std::random_device under src/util/rng).
std::vector<Finding> scan_file(const std::string& path,
                               const std::string& content,
                               const NameSets& names);

/// Parses the suppression file format: one `path-substring check reason`
/// per line, '#' comments, blank lines ignored.
std::vector<Suppression> parse_suppressions(const std::string& text);

/// Marks findings matched by a suppression entry.
void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<Suppression>& suppressions);

}  // namespace detlint
