// detlint CLI: scan source roots for determinism hazards.
//
//   detlint --root src --root tools [--suppressions file] [--verbose]
//
// Exits 0 when every finding is suppressed (or none exist), 1 when any
// unsuppressed finding remains, 2 on usage/IO errors.
#include "detlint/detlint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string suppressions_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg == "--suppressions" && i + 1 < argc) {
      suppressions_path = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "usage: detlint --root DIR [--root DIR ...]"
                << " [--suppressions FILE] [--verbose]\n";
      return 2;
    }
  }
  if (roots.empty()) {
    std::cerr << "detlint: no --root given\n";
    return 2;
  }

  // Deterministic file order: collect, then sort by path string.
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "detlint: root does not exist: " << root << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      // Fixture trees exist to contain violations.
      if (p.string().find("testdata") != std::string::npos) continue;
      if (is_source_file(p)) files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: whole-tree name collection so a member declared in a header
  // is recognised when a .cpp iterates it.
  detlint::NameSets names;
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const auto& p : files) {
    contents.emplace_back(p.generic_string(), read_file(p));
    detlint::merge_names(names, detlint::collect_names(contents.back().second));
  }

  std::vector<detlint::Suppression> suppressions;
  if (!suppressions_path.empty()) {
    if (!fs::exists(suppressions_path)) {
      std::cerr << "detlint: suppressions file not found: "
                << suppressions_path << "\n";
      return 2;
    }
    suppressions = detlint::parse_suppressions(read_file(suppressions_path));
  }

  // Pass 2: per-file checks.
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const auto& [path, content] : contents) {
    std::vector<detlint::Finding> findings =
        detlint::scan_file(path, content, names);
    detlint::apply_suppressions(findings, suppressions);
    for (const auto& f : findings) {
      if (f.suppressed) {
        ++suppressed;
        if (verbose) {
          std::cout << f.file << ":" << f.line << ": [" << f.check
                    << "] suppressed (" << f.suppress_reason << ")\n";
        }
      } else {
        ++unsuppressed;
        std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
                  << f.message << "\n";
      }
    }
  }

  std::cout << "detlint: scanned " << contents.size() << " files, "
            << unsuppressed << " finding(s), " << suppressed
            << " suppressed\n";
  return unsuppressed == 0 ? 0 : 1;
}
