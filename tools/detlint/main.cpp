// detlint CLI: the pass-pipeline shard-readiness analyzer.
//
//   detlint [--passes=determinism,layers,globals,captures,hotalloc]
//           [--json] [--verbose] [--list-passes] [--check-stale]
//           [--suppressions FILE] [--layers FILE]
//           [--globals-allowlist FILE]
//           [--root DIR] [path ...]
//
// Positional paths may be files or directories; directories are walked
// recursively (fixture trees containing "testdata" are skipped —
// fixtures exist to contain violations; name one explicitly to scan
// it). When run from the repository root the config files default to
// tools/detlint/{layers.txt,globals_allowlist.txt,suppressions.txt}
// if present.
//
// Exit codes:
//   0  clean (every finding suppressed, or none)
//   1  unsuppressed findings remain
//   2  usage or configuration error (bad flag, unknown pass, malformed
//      layers.txt / allowlist entry without a justification)
//   3  I/O error (an input file exists but cannot be read)
#include "detlint/detlint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Options {
  std::vector<std::string> passes;  // pipeline order
  std::vector<std::string> roots;   // dirs + files, scanned in sort order
  std::string suppressions_path;
  std::string layers_path;
  std::string globals_path;
  bool json = false;
  bool verbose = false;
  bool check_stale = false;
};

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Reads a file, distinguishing "unreadable" from "empty": returns
/// false when the file cannot be opened or the read fails.
bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return false;
  out = ss.str();
  return true;
}

void usage(std::ostream& os) {
  os << "usage: detlint [--passes=LIST] [--json] [--verbose]\n"
     << "               [--list-passes] [--check-stale]\n"
     << "               [--suppressions FILE] [--layers FILE]\n"
     << "               [--globals-allowlist FILE] [--root DIR]\n"
     << "               [path ...]\n";
}

bool parse_pass_list(const std::string& list, Options& opts) {
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    if (!detlint::is_pass_name(item)) {
      std::cerr << "detlint: unknown pass '" << item
                << "' (see --list-passes)\n";
      return false;
    }
    if (std::find(opts.passes.begin(), opts.passes.end(), item) ==
        opts.passes.end())
      opts.passes.push_back(item);
  }
  return true;
}

bool pass_enabled(const Options& opts, const std::string& name) {
  return std::find(opts.passes.begin(), opts.passes.end(), name) !=
         opts.passes.end();
}

/// Default config file: used only when it exists, so plain
/// `detlint src` works both from the repo root and on bare fixture
/// trees.
std::string default_config(const std::string& explicit_path,
                           const char* fallback) {
  if (!explicit_path.empty()) return explicit_path;
  if (fs::exists(fallback)) return fallback;
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  bool list_passes = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.roots.emplace_back(argv[++i]);
    } else if (arg == "--suppressions" && i + 1 < argc) {
      opts.suppressions_path = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      opts.layers_path = argv[++i];
    } else if (arg == "--globals-allowlist" && i + 1 < argc) {
      opts.globals_path = argv[++i];
    } else if (arg.rfind("--passes=", 0) == 0) {
      if (!parse_pass_list(arg.substr(9), opts)) return 2;
    } else if (arg == "--passes" && i + 1 < argc) {
      if (!parse_pass_list(argv[++i], opts)) return 2;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--list-passes") {
      list_passes = true;
    } else if (arg == "--check-stale") {
      opts.check_stale = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(std::cerr);
      return 2;
    } else {
      opts.roots.push_back(arg);
    }
  }

  if (list_passes) {
    for (const auto& p : detlint::passes()) std::cout << p.name << "\n";
    return 0;
  }
  if (opts.passes.empty()) {
    for (const auto& p : detlint::passes()) opts.passes.push_back(p.name);
  }
  if (opts.roots.empty()) {
    std::cerr << "detlint: no input paths given\n";
    usage(std::cerr);
    return 2;
  }

  // Deterministic file order: collect, then sort by path string.
  // Explicitly named files are scanned even inside fixture trees.
  std::vector<fs::path> files;
  for (const auto& root : opts.roots) {
    if (!fs::exists(root)) {
      std::cerr << "detlint: path does not exist: " << root << "\n";
      return 2;
    }
    if (fs::is_directory(root)) {
      // Fixture trees exist to contain violations: skip them during a
      // walk, unless the named root itself is inside one.
      const bool fixture_root =
          root.find("testdata") != std::string::npos;
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const fs::path& p = entry.path();
        if (!fixture_root &&
            p.string().find("testdata") != std::string::npos)
          continue;
        if (is_source_file(p)) files.push_back(p);
      }
    } else if (!fs::is_regular_file(root)) {
      std::cerr << "detlint: cannot read input file (not a regular "
                << "file): " << root << "\n";
      return 3;
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Read everything up front. An unreadable input is an I/O error with
  // its own exit code — silently scanning an empty stand-in would
  // report "clean" on code that was never looked at.
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const auto& p : files) {
    std::string text;
    if (!read_file(p, text)) {
      std::cerr << "detlint: cannot read input file: " << p.generic_string()
                << "\n";
      return 3;
    }
    contents.emplace_back(p.generic_string(), std::move(text));
  }

  // Config files: explicit paths must exist; defaults apply if present.
  const std::string suppressions_path = default_config(
      opts.suppressions_path, "tools/detlint/suppressions.txt");
  const std::string layers_path =
      default_config(opts.layers_path, "tools/detlint/layers.txt");
  const std::string globals_path = default_config(
      opts.globals_path, "tools/detlint/globals_allowlist.txt");
  for (const auto* explicit_path :
       {&opts.suppressions_path, &opts.layers_path, &opts.globals_path}) {
    if (!explicit_path->empty() && !fs::exists(*explicit_path)) {
      std::cerr << "detlint: config file not found: " << *explicit_path
                << "\n";
      return 2;
    }
  }
  auto read_config = [](const std::string& path, std::string& out) {
    if (path.empty()) return true;
    if (!read_file(path, out)) {
      std::cerr << "detlint: cannot read config file: " << path << "\n";
      return false;
    }
    return true;
  };
  std::string suppressions_text;
  std::string layers_text;
  std::string globals_text;
  if (!read_config(suppressions_path, suppressions_text) ||
      !read_config(layers_path, layers_text) ||
      !read_config(globals_path, globals_text))
    return 3;

  const std::vector<detlint::Suppression> suppressions =
      detlint::parse_suppressions(suppressions_text);
  const detlint::LayerConfig layer_config =
      detlint::parse_layers(layers_text);
  if (pass_enabled(opts, "layers") && !layer_config.errors.empty()) {
    for (const auto& e : layer_config.errors)
      std::cerr << "detlint: " << e << "\n";
    return 2;
  }
  std::vector<std::string> allowlist_errors;
  const std::vector<detlint::GlobalsAllowEntry> allowlist =
      detlint::parse_globals_allowlist(globals_text, &allowlist_errors);
  if (pass_enabled(opts, "globals") && !allowlist_errors.empty()) {
    for (const auto& e : allowlist_errors)
      std::cerr << "detlint: " << e << "\n";
    return 2;
  }

  // Whole-tree name collection (determinism pass) so a member declared
  // in a header is recognised when a .cpp iterates it.
  detlint::NameSets names;
  if (pass_enabled(opts, "determinism")) {
    for (const auto& [path, content] : contents)
      detlint::merge_names(names, detlint::collect_names(content));
  }

  std::vector<detlint::Finding> findings;
  std::set<std::pair<std::string, std::string>> observed_edges;
  for (const auto& [path, content] : contents) {
    std::vector<detlint::Finding> file_findings;
    for (const auto& pass : opts.passes) {
      std::vector<detlint::Finding> batch;
      if (pass == "determinism") {
        batch = detlint::scan_file(path, content, names);
      } else if (pass == "layers") {
        batch = detlint::check_layers(path, content, layer_config,
                                      &observed_edges);
      } else if (pass == "globals") {
        batch = detlint::check_globals(path, content);
      } else if (pass == "captures") {
        batch = detlint::check_captures(path, content);
      } else if (pass == "hotalloc") {
        batch = detlint::check_hotalloc(path, content);
      }
      file_findings.insert(file_findings.end(), batch.begin(), batch.end());
    }
    detlint::apply_inline_annotations(content, file_findings);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  std::vector<bool> allowlist_matched;
  detlint::apply_globals_allowlist(findings, allowlist, &allowlist_matched);
  detlint::apply_suppressions(findings, suppressions);

  // Stale-entry audit: allowlist lines and declared edges that match
  // nothing rot into false confidence; CI fails on them.
  if (opts.check_stale && pass_enabled(opts, "globals")) {
    for (std::size_t i = 0; i < allowlist.size(); ++i) {
      if (allowlist_matched[i]) continue;
      const auto& e = allowlist[i];
      findings.push_back({globals_path, e.line, "stale-allowlist",
                          "allowlist entry '" + e.path_substring + " " +
                          e.symbol + "' matched no finding; delete it",
                          false, "", "globals", e.symbol});
    }
  }
  if (opts.check_stale) {
    if (pass_enabled(opts, "layers")) {
      for (const auto& [edge, line] : layer_config.edge_lines) {
        if (observed_edges.count(edge) != 0) continue;
        findings.push_back({layers_path, line, "stale-edge",
                            "declared edge '" + edge.first + " -> " +
                            edge.second + "' matched no #include in the "
                            "scanned tree; delete it",
                            false, "", "layers", edge.second});
      }
    }
  }

  detlint::sort_findings(findings);
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const auto& f : findings) (f.suppressed ? suppressed : unsuppressed)++;

  if (opts.json) {
    std::cout << detlint::findings_to_json(findings, contents.size());
  } else {
    for (const auto& f : findings) {
      if (f.suppressed) {
        if (opts.verbose) {
          std::cout << f.file << ":" << f.line << ": [" << f.pass << "/"
                    << f.check << "] suppressed (" << f.suppress_reason
                    << ")\n";
        }
      } else {
        std::cout << f.file << ":" << f.line << ": [" << f.pass << "/"
                  << f.check << "] " << f.message << "\n";
      }
    }
    std::cout << "detlint: scanned " << contents.size() << " files, "
              << unsuppressed << " finding(s), " << suppressed
              << " suppressed\n";
  }
  return unsuppressed == 0 ? 0 : 1;
}
